package kg

import (
	"fmt"
	"sort"
)

// Delta stages a batch of mutations against a frozen Graph and applies
// them functionally: Apply produces a NEW immutable Graph (the base is
// never modified), plus a Changed record describing exactly what moved so
// the path-pattern index can be maintained incrementally instead of
// rebuilt. This is the write half of treating ingest as a first-class
// workload next to queries: readers keep using the old snapshot while a
// new one is derived.
//
// ID stability is the load-bearing property. Surviving nodes keep their
// NodeIDs; new nodes are appended after the base ID space; removed nodes
// become inert tombstones (Literal type, empty text, no edges, excluded
// from NodesOfType) rather than being compacted away, so that posting
// lists of unaffected roots stay valid verbatim. EdgeIDs DO shift when
// edges are added or removed (the CSR re-sorts by source); Changed.EdgeMap
// records the old→new mapping so index maintenance can remap.
//
// Every mutator validates eagerly and returns an error on a
// type-inconsistent or dangling operation; a Delta that only ever returned
// nil errors always Applies cleanly. Delta is not safe for concurrent use.
type Delta struct {
	base *Graph

	// Name interning for types/attributes new in this delta.
	typeIDs   map[string]TypeID
	typeNames []string // base names + new names
	attrIDs   map[string]AttrID
	attrNames []string

	// Appended nodes (IDs base.NumNodes()+i).
	newType []TypeID
	newText []string

	addedEdges   []Edge
	removedEdges map[EdgeID]bool   // base EdgeIDs cut by this delta
	removedNodes map[NodeID]bool   // tombstoned by this delta
	retext       map[NodeID]string // text overrides
}

// NewDelta starts an empty batch of mutations against g.
func NewDelta(g *Graph) *Delta {
	d := &Delta{
		base:         g,
		typeIDs:      make(map[string]TypeID, len(g.typeNames)),
		typeNames:    append([]string(nil), g.typeNames...),
		attrIDs:      make(map[string]AttrID, len(g.attrNames)),
		attrNames:    append([]string(nil), g.attrNames...),
		removedEdges: make(map[EdgeID]bool),
		removedNodes: make(map[NodeID]bool),
		retext:       make(map[NodeID]string),
	}
	for i, n := range g.typeNames {
		d.typeIDs[n] = TypeID(i)
	}
	for i, n := range g.attrNames {
		d.attrIDs[n] = AttrID(i)
	}
	return d
}

// numNodes is the staged node count: base nodes plus appended ones.
func (d *Delta) numNodes() int { return d.base.NumNodes() + len(d.newType) }

// nodeType returns τ(v) under the staged state.
func (d *Delta) nodeType(v NodeID) TypeID {
	if int(v) < d.base.NumNodes() {
		return d.base.Type(v)
	}
	return d.newType[int(v)-d.base.NumNodes()]
}

// live reports an error unless v is a valid, non-tombstoned node under the
// staged state.
func (d *Delta) live(v NodeID) error {
	if v < 0 || int(v) >= d.numNodes() {
		return fmt.Errorf("kg: node %d out of range [0,%d)", v, d.numNodes())
	}
	if int(v) < d.base.NumNodes() && d.base.Removed(v) {
		return fmt.Errorf("kg: node %d was removed by an earlier update", v)
	}
	if d.removedNodes[v] {
		return fmt.Errorf("kg: node %d is removed by this update", v)
	}
	return nil
}

// AddEntity appends an entity with the given type name (new names are
// interned) and text, returning its future NodeID. The reserved Literal
// type cannot be instantiated directly; plain-text values go through
// AddTextAttr, mirroring Builder.
func (d *Delta) AddEntity(typeName, text string) (NodeID, error) {
	if typeName == "" {
		return -1, fmt.Errorf("kg: entity type name must not be empty")
	}
	if typeName == d.typeNames[LiteralType] {
		return -1, fmt.Errorf("kg: type %q is reserved for plain-text values; use AddTextAttr", typeName)
	}
	t, ok := d.typeIDs[typeName]
	if !ok {
		t = TypeID(len(d.typeNames))
		d.typeIDs[typeName] = t
		d.typeNames = append(d.typeNames, typeName)
	}
	id := NodeID(d.numNodes())
	d.newType = append(d.newType, t)
	d.newText = append(d.newText, text)
	return id, nil
}

// AddAttr stages the attribute edge src.attrName = dst. Literal nodes are
// value leaves (Section 2.1): giving one an out-edge is a type error.
func (d *Delta) AddAttr(src NodeID, attrName string, dst NodeID) error {
	if attrName == "" {
		return fmt.Errorf("kg: attribute name must not be empty")
	}
	if err := d.live(src); err != nil {
		return fmt.Errorf("kg: attribute source: %w", err)
	}
	if err := d.live(dst); err != nil {
		return fmt.Errorf("kg: attribute target: %w", err)
	}
	if d.nodeType(src) == LiteralType {
		return fmt.Errorf("kg: node %d is a plain-text literal and cannot have attributes", src)
	}
	a, ok := d.attrIDs[attrName]
	if !ok {
		a = AttrID(len(d.attrNames))
		d.attrIDs[attrName] = a
		d.attrNames = append(d.attrNames, attrName)
	}
	d.addedEdges = append(d.addedEdges, Edge{Src: src, Dst: dst, Attr: a})
	return nil
}

// AddTextAttr stages src.attrName = value for a plain-text value: a dummy
// Literal entity is appended to hold the text, and its NodeID is returned.
func (d *Delta) AddTextAttr(src NodeID, attrName, value string) (NodeID, error) {
	if err := d.live(src); err != nil {
		return -1, fmt.Errorf("kg: attribute source: %w", err)
	}
	if d.nodeType(src) == LiteralType {
		return -1, fmt.Errorf("kg: node %d is a plain-text literal and cannot have attributes", src)
	}
	if attrName == "" {
		return -1, fmt.Errorf("kg: attribute name must not be empty")
	}
	lit := NodeID(d.numNodes())
	d.newType = append(d.newType, LiteralType)
	d.newText = append(d.newText, value)
	if err := d.AddAttr(src, attrName, lit); err != nil {
		// Roll the literal back so the delta stays consistent.
		d.newType = d.newType[:len(d.newType)-1]
		d.newText = d.newText[:len(d.newText)-1]
		return -1, err
	}
	return lit, nil
}

// SetText stages a replacement text description for v.
func (d *Delta) SetText(v NodeID, text string) error {
	if err := d.live(v); err != nil {
		return err
	}
	d.retext[v] = text
	return nil
}

// RemoveEdge cuts every staged edge src --attrName--> dst (multi-valued
// attributes can hold the same triple more than once) and returns how many
// were cut. A triple that matches nothing is an error: the caller's view
// of the KB is stale.
func (d *Delta) RemoveEdge(src NodeID, attrName string, dst NodeID) (int, error) {
	if err := d.live(src); err != nil {
		return 0, fmt.Errorf("kg: edge source: %w", err)
	}
	if err := d.live(dst); err != nil {
		return 0, fmt.Errorf("kg: edge target: %w", err)
	}
	a, ok := d.attrIDs[attrName]
	if !ok {
		return 0, fmt.Errorf("kg: unknown attribute type %q", attrName)
	}
	n := 0
	if int(src) < d.base.NumNodes() {
		first, cnt := d.base.OutEdges(src)
		for i := 0; i < cnt; i++ {
			id := first + EdgeID(i)
			e := d.base.Edge(id)
			if e.Attr == a && e.Dst == dst && !d.removedEdges[id] {
				d.removedEdges[id] = true
				n++
			}
		}
	}
	n += d.dropAddedEdges(func(e Edge) bool { return e.Src == src && e.Attr == a && e.Dst == dst })
	if n == 0 {
		return 0, fmt.Errorf("kg: no edge %d --%s--> %d", src, attrName, dst)
	}
	return n, nil
}

// RemoveEntity tombstones v and cascades to every incident edge (in both
// directions). Literal values v pointed at are NOT removed automatically —
// remove them explicitly if they should not remain as free-standing text
// entities.
func (d *Delta) RemoveEntity(v NodeID) error {
	if err := d.live(v); err != nil {
		return err
	}
	if int(v) < d.base.NumNodes() {
		first, cnt := d.base.OutEdges(v)
		for i := 0; i < cnt; i++ {
			d.removedEdges[first+EdgeID(i)] = true
		}
		for _, id := range d.base.InEdgeIDs(v) {
			d.removedEdges[id] = true
		}
	}
	d.dropAddedEdges(func(e Edge) bool { return e.Src == v || e.Dst == v })
	delete(d.retext, v)
	d.removedNodes[v] = true
	return nil
}

// dropAddedEdges filters staged added edges, returning how many matched.
func (d *Delta) dropAddedEdges(match func(Edge) bool) int {
	n := 0
	kept := d.addedEdges[:0]
	for _, e := range d.addedEdges {
		if match(e) {
			n++
			continue
		}
		kept = append(kept, e)
	}
	d.addedEdges = kept
	return n
}

// Changed describes one applied Delta: the old and new snapshots plus the
// structural diff that incremental index maintenance consumes.
type Changed struct {
	Old, New *Graph

	// EdgeMap maps every old EdgeID to its new EdgeID, -1 if the edge was
	// removed. nil means the edge list is unchanged (identity mapping).
	EdgeMap []EdgeID

	// Touched lists (sorted, deduplicated, new-graph numbering) every node
	// whose local state changed: endpoints of added/removed edges, added,
	// removed and re-texted nodes. A root's postings can only have changed
	// if its (d-1)-neighborhood intersects this set — see AffectedRoots.
	Touched []NodeID

	// AddedNodes is the number of nodes appended (their IDs are
	// Old.NumNodes() … New.NumNodes()-1).
	AddedNodes   int
	RemovedNodes int
	AddedEdges   int
	RemovedEdges int
}

// Apply materializes the staged mutations into a new immutable Graph. The
// base graph is untouched and remains fully usable (in-flight readers keep
// their snapshot).
func (d *Delta) Apply() (*Changed, error) {
	if len(d.newType) == 0 && len(d.addedEdges) == 0 && len(d.removedEdges) == 0 &&
		len(d.removedNodes) == 0 && len(d.retext) == 0 {
		return nil, fmt.Errorf("kg: empty update")
	}
	base := d.base
	n := base.NumNodes() + len(d.newType)

	g := &Graph{
		typeNames: d.typeNames,
		attrNames: d.attrNames,
		nodeType:  make([]TypeID, n),
		nodeText:  make([]string, n),
	}
	copy(g.nodeType, base.nodeType)
	copy(g.nodeText, base.nodeText)
	copy(g.nodeType[base.NumNodes():], d.newType)
	copy(g.nodeText[base.NumNodes():], d.newText)
	if base.removed != nil || len(d.removedNodes) > 0 {
		g.removed = make([]bool, n)
		copy(g.removed, base.removed)
	}
	for v, txt := range d.retext {
		g.nodeText[v] = txt
	}
	for v := range d.removedNodes {
		// Tombstone: Literal type + empty text keeps the slot inert for
		// both index construction (literal type text is not searchable)
		// and the baseline's online search.
		g.removed[v] = true
		g.nodeType[v] = LiteralType
		g.nodeText[v] = ""
	}

	// Rebuild the edge list: surviving base edges (tagged with their old
	// IDs) plus added ones, stably re-sorted by Src inside freezeGraph.
	// Stability means per-source relative order is preserved, so the DFS
	// enumeration order of any untouched root is byte-for-byte what it was.
	identity := len(d.addedEdges) == 0 && len(d.removedEdges) == 0
	type tagged struct {
		e   Edge
		old EdgeID
	}
	tag := make([]tagged, 0, len(base.edges)-len(d.removedEdges)+len(d.addedEdges))
	for id, e := range base.edges {
		if d.removedEdges[EdgeID(id)] {
			continue
		}
		tag = append(tag, tagged{e: e, old: EdgeID(id)})
	}
	for _, e := range d.addedEdges {
		tag = append(tag, tagged{e: e, old: -1})
	}
	sort.SliceStable(tag, func(i, j int) bool { return tag[i].e.Src < tag[j].e.Src })
	g.edges = make([]Edge, len(tag))
	var edgeMap []EdgeID
	if !identity {
		edgeMap = make([]EdgeID, len(base.edges))
		for i := range edgeMap {
			edgeMap[i] = -1
		}
	}
	for newID, t := range tag {
		g.edges[newID] = t.e
		if !identity && t.old >= 0 {
			edgeMap[t.old] = EdgeID(newID)
		}
	}
	if err := freezeGraph(g); err != nil {
		return nil, err // unreachable if eager validation held
	}

	touched := make(map[NodeID]bool)
	for id := range d.removedEdges {
		e := base.Edge(id)
		touched[e.Src] = true
		touched[e.Dst] = true
	}
	for _, e := range d.addedEdges {
		touched[e.Src] = true
		touched[e.Dst] = true
	}
	for v := range d.removedNodes {
		touched[v] = true
	}
	for v := range d.retext {
		touched[v] = true
	}
	for i := range d.newType {
		touched[NodeID(base.NumNodes()+i)] = true
	}
	ts := make([]NodeID, 0, len(touched))
	for v := range touched {
		ts = append(ts, v)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })

	return &Changed{
		Old:          base,
		New:          g,
		EdgeMap:      edgeMap,
		Touched:      ts,
		AddedNodes:   len(d.newType),
		RemovedNodes: len(d.removedNodes),
		AddedEdges:   len(d.addedEdges),
		RemovedEdges: len(d.removedEdges),
	}, nil
}

// AffectedRoots returns (sorted) every node from whose perspective the
// change is visible within `depth` forward edges: the union, over both the
// old and the new snapshot, of the backward ≤depth-neighborhoods of the
// touched nodes. Any indexed path of at most depth edges that traverses a
// changed node or edge starts at one of these roots, so re-running the
// bounded-height DFS from exactly this set (and splicing the results) is
// equivalent to a full index rebuild.
//
// Both snapshots matter: the old one catches roots that could reach a
// removed element (those paths must disappear), the new one catches roots
// that now reach an added element (those paths must appear).
func AffectedRoots(ch *Changed, depth int) []NodeID {
	marked := make([]bool, ch.New.NumNodes())
	oldStarts := make([]NodeID, 0, len(ch.Touched))
	for _, v := range ch.Touched {
		if int(v) < ch.Old.NumNodes() {
			oldStarts = append(oldStarts, v)
		}
	}
	backwardReach(ch.Old, oldStarts, depth, marked)
	backwardReach(ch.New, ch.Touched, depth, marked)
	out := make([]NodeID, 0, len(ch.Touched))
	for v, m := range marked {
		if m {
			out = append(out, NodeID(v))
		}
	}
	return out
}

// backwardReach marks every node that reaches one of starts within depth
// edges in g (including the starts themselves) into marked, which may be
// longer than g's node count.
func backwardReach(g *Graph, starts []NodeID, depth int, marked []bool) {
	visited := make([]bool, g.NumNodes())
	frontier := make([]NodeID, 0, len(starts))
	for _, v := range starts {
		if int(v) >= g.NumNodes() || visited[v] {
			continue
		}
		visited[v] = true
		marked[v] = true
		frontier = append(frontier, v)
	}
	for level := 0; level < depth && len(frontier) > 0; level++ {
		var next []NodeID
		for _, v := range frontier {
			for _, id := range g.InEdgeIDs(v) {
				src := g.Edge(id).Src
				if !visited[src] {
					visited[src] = true
					marked[src] = true
					next = append(next, src)
				}
			}
		}
		frontier = next
	}
}
