// Package kg implements the knowledge-graph substrate of the paper
// (Section 2.1): a directed graph G = (V, E, τ, α) where nodes are entities
// labeled with entity types, edges are attributes labeled with attribute
// types, and entities / entity types / attribute types carry text
// descriptions. Plain-text attribute values become dummy entities holding
// the text, exactly as the paper assumes w.l.o.g.
//
// A Graph is constructed through a Builder and then frozen into an immutable
// CSR (compressed sparse row) form that supports fast forward and backward
// traversal, which the path indexes and the baseline's backward search need.
package kg

import "fmt"

// NodeID identifies an entity. IDs are dense, assigned in insertion order.
type NodeID int32

// EdgeID identifies an attribute edge in the frozen graph. EdgeIDs are
// assigned by Freeze in (source, insertion) order so that a node's out-edges
// are contiguous.
type EdgeID int32

// TypeID identifies an entity type (τ values). LiteralType is reserved for
// dummy entities created from plain-text attribute values.
type TypeID int32

// AttrID identifies an attribute type (α values).
type AttrID int32

// LiteralType is the entity type of dummy nodes created from plain text.
// The paper omits types on such nodes; we give them a reserved type whose
// name renders as "Literal" in patterns and table headers.
const LiteralType TypeID = 0

// Edge is a directed attribute edge v --A--> u, meaning v.A = u.
type Edge struct {
	Src  NodeID
	Dst  NodeID
	Attr AttrID
}

// Graph is an immutable knowledge graph in CSR form. Construct via Builder.
type Graph struct {
	typeNames []string
	attrNames []string

	nodeType []TypeID
	nodeText []string

	// edges sorted by Src; outStart[v]..outStart[v+1] delimit v's out-edges.
	edges    []Edge
	outStart []int32

	// Backward adjacency: inEdges lists EdgeIDs sorted by Dst;
	// inStart[v]..inStart[v+1] delimit edges pointing at v.
	inEdges []EdgeID
	inStart []int32

	// nodesByType[t] lists the NodeIDs of type t in ascending order;
	// LINEARENUM-TOPK partitions candidate roots by this.
	nodesByType [][]NodeID

	// removed marks tombstoned nodes left behind by Delta.Apply: their
	// NodeIDs stay valid (everything downstream references nodes by dense
	// ID) but they carry no text, no edges, and are excluded from
	// nodesByType, so no path and no posting can involve them. nil when the
	// graph never saw a removal.
	removed []bool
}

// NumNodes returns |V|.
func (g *Graph) NumNodes() int { return len(g.nodeType) }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return len(g.edges) }

// NumTypes returns |C|, the number of entity types including LiteralType.
func (g *Graph) NumTypes() int { return len(g.typeNames) }

// NumAttrs returns |A|, the number of attribute types.
func (g *Graph) NumAttrs() int { return len(g.attrNames) }

// Type returns τ(v).
func (g *Graph) Type(v NodeID) TypeID { return g.nodeType[v] }

// Text returns v.text, the entity's text description.
func (g *Graph) Text(v NodeID) string { return g.nodeText[v] }

// TypeName returns C.text for an entity type.
func (g *Graph) TypeName(t TypeID) string { return g.typeNames[t] }

// AttrName returns A.text for an attribute type.
func (g *Graph) AttrName(a AttrID) string { return g.attrNames[a] }

// Edge returns the edge with the given ID.
func (g *Graph) Edge(e EdgeID) Edge { return g.edges[e] }

// OutEdges returns the IDs of v's out-edges as a contiguous range
// [first, first+n). The slice of edges is g.edges[first : first+n].
func (g *Graph) OutEdges(v NodeID) (first EdgeID, n int) {
	return EdgeID(g.outStart[v]), int(g.outStart[v+1] - g.outStart[v])
}

// OutEdgeSlice returns v's out-edges as a shared (read-only) slice.
func (g *Graph) OutEdgeSlice(v NodeID) []Edge {
	return g.edges[g.outStart[v]:g.outStart[v+1]]
}

// OutDegree returns the number of out-edges of v (used by PageRank).
func (g *Graph) OutDegree(v NodeID) int {
	return int(g.outStart[v+1] - g.outStart[v])
}

// InEdgeIDs returns the IDs of edges pointing at v (read-only slice).
func (g *Graph) InEdgeIDs(v NodeID) []EdgeID {
	return g.inEdges[g.inStart[v]:g.inStart[v+1]]
}

// NodesOfType returns all live nodes with type t in ascending NodeID order.
// The returned slice is shared and must not be modified.
func (g *Graph) NodesOfType(t TypeID) []NodeID { return g.nodesByType[t] }

// Removed reports whether v was tombstoned by a Delta. Removed nodes keep
// their (now inert) slot so that surviving NodeIDs stay stable.
func (g *Graph) Removed(v NodeID) bool {
	return g.removed != nil && g.removed[v]
}

// NumRemoved returns the number of tombstoned nodes.
func (g *Graph) NumRemoved() int {
	n := 0
	for _, r := range g.removed {
		if r {
			n++
		}
	}
	return n
}

// LookupType returns the TypeID with the given name, or -1.
func (g *Graph) LookupType(name string) TypeID {
	for i, n := range g.typeNames {
		if n == name {
			return TypeID(i)
		}
	}
	return -1
}

// LookupAttr returns the AttrID with the given name, or -1.
func (g *Graph) LookupAttr(name string) AttrID {
	for i, n := range g.attrNames {
		if n == name {
			return AttrID(i)
		}
	}
	return -1
}

// FindEntity returns the first node with the exact text and type name, or
// -1. Intended for tests and examples, not hot paths.
func (g *Graph) FindEntity(text, typeName string) NodeID {
	t := g.LookupType(typeName)
	if t < 0 {
		return -1
	}
	for _, v := range g.nodesByType[t] {
		if g.nodeText[v] == text {
			return v
		}
	}
	return -1
}

// Stats summarizes the graph for logging and experiment reports.
type Stats struct {
	Nodes int
	Edges int
	Types int
	Attrs int
}

// Stats returns summary counts.
func (g *Graph) Stats() Stats {
	return Stats{Nodes: g.NumNodes(), Edges: g.NumEdges(), Types: g.NumTypes(), Attrs: g.NumAttrs()}
}

func (g *Graph) String() string {
	s := g.Stats()
	return fmt.Sprintf("kg.Graph{nodes=%d edges=%d types=%d attrs=%d}", s.Nodes, s.Edges, s.Types, s.Attrs)
}
