package kg

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	b := NewBuilder()
	s := b.Entity("Software", `SQL "Server"`)
	c := b.Entity("Company", "Microsoft")
	b.Attr(s, "Developer", c)
	b.TextAttr(c, "Revenue", "US$ 77 billion")
	g := b.MustFreeze()

	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, 0); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"digraph kb {",
		`SQL \"Server\"`, // quotes escaped
		"Developer",
		"Microsoft",
		"US$ 77 billion",
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
	// Literal node has no ": Type" suffix.
	if strings.Contains(out, "US$ 77 billion\\n:") {
		t.Errorf("literal node should not show a type")
	}
}

func TestWriteDOTBounded(t *testing.T) {
	b := NewBuilder()
	var prev NodeID
	for i := 0; i < 10; i++ {
		v := b.Entity("T", "node")
		if i > 0 {
			b.Attr(prev, "next", v)
		}
		prev = v
	}
	g := b.MustFreeze()
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, 3); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "[label=\"node\\\\n: T\"]") != 3 {
		t.Errorf("bounded DOT should have 3 nodes:\n%s", out)
	}
	// Edges crossing the bound are dropped: only n0->n1, n1->n2 remain.
	if strings.Count(out, "->") != 2 {
		t.Errorf("bounded DOT should have 2 edges:\n%s", out)
	}
}
