package kg

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// graphWire is the gob wire format of a Graph. Only the builder-level data
// is persisted (plus the tombstone bitmap, which no Builder call can
// reproduce); CSR structures are rebuilt on load, which keeps the format
// small and decouples it from in-memory layout.
type graphWire struct {
	TypeNames []string
	AttrNames []string
	NodeType  []TypeID
	NodeText  []string
	Edges     []Edge
	// Removed marks tombstoned nodes (nil when the graph never saw a
	// removal — also what files written before live updates decode to).
	// Dropping it would resurrect removed entities on load.
	Removed []bool
}

// Encode serializes the graph with encoding/gob.
func (g *Graph) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := gob.NewEncoder(bw)
	wire := graphWire{
		TypeNames: g.typeNames,
		AttrNames: g.attrNames,
		NodeType:  g.nodeType,
		NodeText:  g.nodeText,
		Edges:     g.edges,
		Removed:   g.removed,
	}
	if err := enc.Encode(&wire); err != nil {
		return fmt.Errorf("kg: encode graph: %w", err)
	}
	return bw.Flush()
}

// ReadFrom deserializes a graph written by Encode.
func ReadFrom(r io.Reader) (*Graph, error) {
	dec := gob.NewDecoder(bufio.NewReader(r))
	var wire graphWire
	if err := dec.Decode(&wire); err != nil {
		return nil, fmt.Errorf("kg: decode graph: %w", err)
	}
	if len(wire.NodeType) != len(wire.NodeText) {
		return nil, fmt.Errorf("kg: decode graph: %d node types for %d node texts", len(wire.NodeType), len(wire.NodeText))
	}
	if wire.Removed != nil && len(wire.Removed) != len(wire.NodeType) {
		return nil, fmt.Errorf("kg: decode graph: removed bitmap covers %d of %d nodes", len(wire.Removed), len(wire.NodeType))
	}
	for v, t := range wire.NodeType {
		if t < 0 || int(t) >= len(wire.TypeNames) {
			return nil, fmt.Errorf("kg: decode graph: node %d has unknown type %d", v, t)
		}
	}
	for i, e := range wire.Edges {
		if e.Attr < 0 || int(e.Attr) >= len(wire.AttrNames) {
			return nil, fmt.Errorf("kg: decode graph: edge %d has unknown attribute %d", i, e.Attr)
		}
	}
	g := &Graph{
		typeNames: wire.TypeNames,
		attrNames: wire.AttrNames,
		nodeType:  wire.NodeType,
		nodeText:  wire.NodeText,
		edges:     wire.Edges,
		removed:   wire.Removed,
	}
	if err := freezeGraph(g); err != nil {
		return nil, err
	}
	return g, nil
}

// SaveFile writes the graph to path.
func (g *Graph) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("kg: create %s: %w", path, err)
	}
	defer f.Close()
	if err := g.Encode(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a graph from path.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("kg: open %s: %w", path, err)
	}
	defer f.Close()
	return ReadFrom(f)
}
