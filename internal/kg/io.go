package kg

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// graphWire is the gob wire format of a Graph. Only the builder-level data
// is persisted; CSR structures are rebuilt on load, which keeps the format
// small and decouples it from in-memory layout.
type graphWire struct {
	TypeNames []string
	AttrNames []string
	NodeType  []TypeID
	NodeText  []string
	Edges     []Edge
}

// Encode serializes the graph with encoding/gob.
func (g *Graph) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := gob.NewEncoder(bw)
	wire := graphWire{
		TypeNames: g.typeNames,
		AttrNames: g.attrNames,
		NodeType:  g.nodeType,
		NodeText:  g.nodeText,
		Edges:     g.edges,
	}
	if err := enc.Encode(&wire); err != nil {
		return fmt.Errorf("kg: encode graph: %w", err)
	}
	return bw.Flush()
}

// ReadFrom deserializes a graph written by Encode.
func ReadFrom(r io.Reader) (*Graph, error) {
	dec := gob.NewDecoder(bufio.NewReader(r))
	var wire graphWire
	if err := dec.Decode(&wire); err != nil {
		return nil, fmt.Errorf("kg: decode graph: %w", err)
	}
	b := &Builder{
		typeIDs:   make(map[string]TypeID, len(wire.TypeNames)),
		typeNames: wire.TypeNames,
		attrIDs:   make(map[string]AttrID, len(wire.AttrNames)),
		attrNames: wire.AttrNames,
		nodeType:  wire.NodeType,
		nodeText:  wire.NodeText,
		edges:     wire.Edges,
	}
	for i, n := range wire.TypeNames {
		b.typeIDs[n] = TypeID(i)
	}
	for i, n := range wire.AttrNames {
		b.attrIDs[n] = AttrID(i)
	}
	return b.Freeze()
}

// SaveFile writes the graph to path.
func (g *Graph) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("kg: create %s: %w", path, err)
	}
	defer f.Close()
	if err := g.Encode(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a graph from path.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("kg: open %s: %w", path, err)
	}
	defer f.Close()
	return ReadFrom(f)
}
