package kg

import (
	"fmt"
	"sort"
)

// Builder accumulates entities and attributes and produces an immutable
// Graph. It mirrors the knowledge-base view of Figure 1(a)-(c): entities
// have a type and text, and attributes either reference other entities or
// hold plain text (which becomes a dummy Literal entity).
//
// Builder is not safe for concurrent use.
type Builder struct {
	typeIDs   map[string]TypeID
	typeNames []string
	attrIDs   map[string]AttrID
	attrNames []string

	nodeType []TypeID
	nodeText []string
	edges    []Edge
}

// NewBuilder returns a Builder with the reserved Literal type registered.
func NewBuilder() *Builder {
	b := &Builder{
		typeIDs: make(map[string]TypeID),
		attrIDs: make(map[string]AttrID),
	}
	// Reserve TypeID 0 for plain-text dummy entities.
	b.typeIDs["Literal"] = LiteralType
	b.typeNames = append(b.typeNames, "Literal")
	return b
}

// TypeID interns an entity-type name.
func (b *Builder) TypeID(name string) TypeID {
	if id, ok := b.typeIDs[name]; ok {
		return id
	}
	id := TypeID(len(b.typeNames))
	b.typeIDs[name] = id
	b.typeNames = append(b.typeNames, name)
	return id
}

// AttrID interns an attribute-type name.
func (b *Builder) AttrID(name string) AttrID {
	if id, ok := b.attrIDs[name]; ok {
		return id
	}
	id := AttrID(len(b.attrNames))
	b.attrIDs[name] = id
	b.attrNames = append(b.attrNames, name)
	return id
}

// Entity adds an entity with the given type name and text description and
// returns its NodeID.
func (b *Builder) Entity(typeName, text string) NodeID {
	return b.EntityT(b.TypeID(typeName), text)
}

// EntityT adds an entity with an already-interned type.
func (b *Builder) EntityT(t TypeID, text string) NodeID {
	id := NodeID(len(b.nodeType))
	b.nodeType = append(b.nodeType, t)
	b.nodeText = append(b.nodeText, text)
	return id
}

// Attr adds the attribute src.attrName = dst, i.e. a directed typed edge.
// Multi-valued attributes are expressed by calling Attr repeatedly with the
// same attrName (cf. "Products" of "Microsoft" in Example 2.1).
func (b *Builder) Attr(src NodeID, attrName string, dst NodeID) {
	b.AttrT(src, b.AttrID(attrName), dst)
}

// AttrT adds an edge with an already-interned attribute type.
func (b *Builder) AttrT(src NodeID, a AttrID, dst NodeID) {
	b.edges = append(b.edges, Edge{Src: src, Dst: dst, Attr: a})
}

// TextAttr adds the attribute src.attrName = text where text is plain text:
// a dummy Literal entity is created to hold the text, per Section 2.1.
// The dummy node's ID is returned so callers can attach further structure.
func (b *Builder) TextAttr(src NodeID, attrName, value string) NodeID {
	v := b.EntityT(LiteralType, value)
	b.Attr(src, attrName, v)
	return v
}

// NumNodes returns the number of entities added so far.
func (b *Builder) NumNodes() int { return len(b.nodeType) }

// Freeze validates the accumulated data and returns the immutable Graph.
// Edges are re-ordered (stably) by source node to form the CSR layout.
func (b *Builder) Freeze() (*Graph, error) {
	g := &Graph{
		typeNames: b.typeNames,
		attrNames: b.attrNames,
		nodeType:  b.nodeType,
		nodeText:  b.nodeText,
	}
	// Copy so later Builder use cannot alias the frozen graph's edges.
	g.edges = make([]Edge, len(b.edges))
	copy(g.edges, b.edges)
	if err := freezeGraph(g); err != nil {
		return nil, err
	}
	return g, nil
}

// freezeGraph validates g's edge list and derives the CSR structures in
// place: forward CSR, backward CSR over EdgeIDs, and the per-type node
// partition (which excludes tombstoned nodes). g.edges is stably re-sorted
// by Src, so per-node insertion order — and everything derived from EdgeIDs
// — stays deterministic. Shared by Builder.Freeze and Delta.Apply.
func freezeGraph(g *Graph) error {
	n := len(g.nodeType)
	for i, e := range g.edges {
		if e.Src < 0 || int(e.Src) >= n || e.Dst < 0 || int(e.Dst) >= n {
			return fmt.Errorf("kg: edge %d (%d->%d) references node out of range [0,%d)", i, e.Src, e.Dst, n)
		}
	}

	sort.SliceStable(g.edges, func(i, j int) bool { return g.edges[i].Src < g.edges[j].Src })
	g.outStart = make([]int32, n+1)
	for _, e := range g.edges {
		g.outStart[e.Src+1]++
	}
	for i := 0; i < n; i++ {
		g.outStart[i+1] += g.outStart[i]
	}

	g.inStart = make([]int32, n+1)
	for _, e := range g.edges {
		g.inStart[e.Dst+1]++
	}
	for i := 0; i < n; i++ {
		g.inStart[i+1] += g.inStart[i]
	}
	g.inEdges = make([]EdgeID, len(g.edges))
	cursor := make([]int32, n)
	copy(cursor, g.inStart[:n])
	for id, e := range g.edges {
		g.inEdges[cursor[e.Dst]] = EdgeID(id)
		cursor[e.Dst]++
	}

	g.nodesByType = make([][]NodeID, len(g.typeNames))
	for v := 0; v < n; v++ {
		if g.removed != nil && g.removed[v] {
			continue
		}
		g.nodesByType[g.nodeType[v]] = append(g.nodesByType[g.nodeType[v]], NodeID(v))
	}
	return nil
}

// MustFreeze is Freeze that panics on error; for tests and fixtures where
// the input is known-valid.
func (b *Builder) MustFreeze() *Graph {
	g, err := b.Freeze()
	if err != nil {
		panic(err)
	}
	return g
}
