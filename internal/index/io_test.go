package index

import (
	"bytes"
	"testing"

	"kbtable/internal/dataset"
	"kbtable/internal/kg"
	"kbtable/internal/text"
)

func TestIndexEncodeLoadRoundTrip(t *testing.T) {
	g, nodes := dataset.Fig1()
	ix, err := Build(g, Options{D: 3, UniformPR: true, Synonyms: map[string]string{"corp": "company"}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	ix2, err := Load(&buf, g)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if ix2.D() != ix.D() {
		t.Errorf("D mismatch")
	}
	if ix2.Stats().NumEntries != ix.Stats().NumEntries {
		t.Errorf("entries mismatch: %d vs %d", ix2.Stats().NumEntries, ix.Stats().NumEntries)
	}
	if ix2.Stats().NumPatterns != ix.Stats().NumPatterns {
		t.Errorf("patterns mismatch")
	}

	// Postings identical for a probe word across both index views.
	for _, word := range []string{"database", "revenue", "software", "corp"} {
		w1, _ := ix.Dict().QueryTokens(word)
		w2, _ := ix2.Dict().QueryTokens(word)
		if len(w1) != 1 || len(w2) != 1 || w1[0] != w2[0] {
			t.Fatalf("word %q resolves differently after load", word)
		}
		r1 := ix.Roots(w1[0])
		r2 := ix2.Roots(w2[0])
		if len(r1) != len(r2) {
			t.Fatalf("roots differ for %q", word)
		}
		for i := range r1 {
			if r1[i] != r2[i] {
				t.Fatalf("root %d differs for %q", i, word)
			}
		}
		for _, r := range r1 {
			p1 := ix.PatternsAt(w1[0], r)
			p2 := ix2.PatternsAt(w2[0], r)
			if len(p1) != len(p2) {
				t.Fatalf("patterns at root %d differ for %q", r, word)
			}
			for i := range p1 {
				a := ix.PatternTable().Get(p1[i]).Render(g)
				b := ix2.PatternTable().Get(p2[i]).Render(g)
				if a != b {
					t.Fatalf("pattern %d at root %d differs: %s vs %s", i, r, a, b)
				}
			}
		}
	}
	// Score terms survive.
	w, _ := ix2.Dict().QueryTokens("revenue")
	found := false
	ix2.PathsAt(w[0], nodes.SQLServer, func(e *Entry) {
		found = true
		if e.Terms.Sim != 1 || e.Terms.Len != 3 {
			t.Errorf("terms wrong after load: %+v", e.Terms)
		}
	})
	if !found {
		t.Errorf("no revenue path at SQL Server after load")
	}
}

func TestIndexSaveLoadFile(t *testing.T) {
	g, _ := dataset.Fig1()
	ix, err := Build(g, Options{D: 2, UniformPR: true})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/fig1.idx"
	if err := ix.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	ix2, err := LoadFile(path, g)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if ix2.Stats().NumEntries != ix.Stats().NumEntries {
		t.Errorf("roundtrip changed entries")
	}
	if _, err := LoadFile(path+".missing", g); err == nil {
		t.Errorf("missing file should error")
	}
}

func TestIndexLoadRejectsWrongGraph(t *testing.T) {
	g, _ := dataset.Fig1()
	ix, err := Build(g, Options{D: 2, UniformPR: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	other := kg.NewBuilder()
	other.Entity("T", "x")
	g2 := other.MustFreeze()
	if _, err := Load(&buf, g2); err == nil {
		t.Errorf("loading against a different graph must fail")
	}
}

func TestIndexLoadRejectsGarbage(t *testing.T) {
	g, _ := dataset.Fig1()
	if _, err := Load(bytes.NewReader([]byte("not a gob stream")), g); err == nil {
		t.Errorf("garbage input must fail")
	}
}

func TestLoadedIndexAnswersQueries(t *testing.T) {
	// End-to-end: a loaded index must answer identically to the built one.
	g, _ := dataset.Fig1()
	ix, err := Build(g, Options{D: 3, UniformPR: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	ix2, err := Load(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"database software", "company revenue"} {
		w1, _ := ix.Dict().QueryTokens(q)
		w2, _ := ix2.Dict().QueryTokens(q)
		for i := range w1 {
			if w1[i] == text.NoWord || w1[i] != w2[i] {
				t.Fatalf("resolution differs for %q", q)
			}
		}
	}
}
