// Package index implements the paper's path-pattern based inverted indexes
// (Section 3, Algorithm 1). For every word w it materializes all paths that
// start at some root r, follow a pattern P, and end at a node or edge whose
// text (entity text, entity-type text, or attribute-type text) contains w.
//
// The same entry set is exposed in the two orders of Figure 4:
//
//	pattern-first: Patterns(w), Roots(w,P), Paths(w,P,r)   — used by PATTERNENUM
//	root-first:    Roots(w), Patterns(w,r), Paths(w,r[,P]) — used by LINEARENUM
//
// Entries carry the precomputed score terms |T(w)|, PR(f(w)) and
// sim(w,f(w)) so that online scoring is a constant-time fold per path
// (Section 3, last paragraph before Theorem 2).
//
// Storage is columnar (struct-of-arrays): instead of an []Entry slice the
// posting lists are parallel per-entry arrays — a term-pool reference, a
// cumulative edge offset, and an edge-end bit — plus per-(pattern, root)
// run tables whose roots are delta-varint compressed per pattern group.
// The score terms (|T(w)|, PR, sim) repeat heavily (PR is per-node, sim is
// per-text), so each word stores the distinct triples once in a value pool
// and entries hold a 4-byte reference. Both views iterate over cache-dense
// arrays and the resident cost is ~12 bytes per posting instead of the ~48
// of the former array-of-structs layout.
package index

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"kbtable/internal/core"
	"kbtable/internal/kg"
	"kbtable/internal/rank"
	"kbtable/internal/text"
)

// Options configure index construction.
type Options struct {
	// D is the height threshold: indexed paths have at most D nodes
	// (counting an edge match's target node). Must be >= 1.
	D int
	// PageRank supplies per-node importance for score2. If nil, PageRank
	// is computed with the paper's defaults (a=0.85, eps=1e-8).
	PageRank []float64
	// UniformPR uses PR(v)=1 for all nodes (Example 2.4's assumption)
	// instead of computing PageRank. Ignored when PageRank is non-nil.
	UniformPR bool
	// Synonyms maps alias words to canonical words; both point at the same
	// posting list (Section 3: "every word has its stemmed version and
	// synonyms in our index pointing to the same path-pattern entry").
	Synonyms map[string]string
	// Workers bounds construction parallelism; defaults to GOMAXPROCS.
	Workers int
	// RootFilter, when non-nil, restricts the index to paths ROOTED at
	// accepted nodes: Build only DFSes from accepted roots, and ApplyDelta
	// only re-enumerates accepted dirty roots. Paths still traverse (and
	// words are still tokenized from) the whole graph — only the candidate
	// roots are partitioned. The shard layer passes its ownership test
	// here; an engine holding one filtered index per shard covers every
	// root exactly once. The same filter must be passed to every
	// maintenance call on indexes built with it.
	RootFilter func(kg.NodeID) bool
	// DirtyRoots optionally injects a precomputed kg.AffectedRoots(ch, D-1)
	// into ApplyDelta (before RootFilter is applied), so an engine applying
	// one delta to many shard indexes runs the affected-roots BFS once
	// instead of once per shard. Ignored by Build. nil means ApplyDelta
	// computes it.
	DirtyRoots []kg.NodeID
}

// Entry is one indexed path for one word, materialized from the columnar
// storage: the path from Root following Pattern to a node/edge containing
// the word, plus precomputed score terms. Accessors fill a caller- or
// iterator-owned Entry per posting; the edge slice aliases the immutable
// per-word edge arena, so a Path derived from it stays valid after the
// Entry is reused.
type Entry struct {
	Pattern core.PatternID
	Root    kg.NodeID
	Terms   core.ScoreTerms
	edges   []kg.EdgeID
	edgeEnd bool
}

// patGroup is a run of entries with the same pattern (pattern-first order).
type patGroup struct {
	Pattern    core.PatternID
	RootType   kg.TypeID
	Start, End int32 // entry range
	RunStart   int32 // range in runEnd (global run indexes)
	RunEnd     int32
	RootOff    int32 // byte offset of the group's delta-varint roots in rootBytes
	SkipStart  int32 // range in skipRoots/skipOffs/skipRun
	SkipEnd    int32
	// bounds summarize the group's score terms for the streaming
	// executor's pruning; derived alongside the group scan on every
	// construction path (build, delta, load).
	bounds patBounds
}

// patBounds are the per-(word, pattern) score-term ranges and the largest
// per-root path run, the raw material of PatternBounds.
type patBounds struct {
	minLen, maxLen int32
	minPR, maxPR   float64
	minSim, maxSim float64
	maxRun         int32
}

// typeGroup is a run of patGroups sharing a root type.
type typeGroup struct {
	Type       kg.TypeID
	Start, End int32 // patGroup range
}

// rootSkipInterval is the skip-table stride over a pattern group's
// delta-varint root list: every rootSkipInterval-th run records its decoded
// root and resume offset, so a root lookup binary-searches the skips and
// decodes at most rootSkipInterval-1 varints.
const rootSkipInterval = 32

// wordIndex holds both index views for one canonical word, as parallel
// columns over the pattern-first entry order (root type, pattern, root,
// path).
type wordIndex struct {
	n int32 // number of postings

	// Per-entry columns.
	termRef   []uint32    // -> termPool
	edgeStart []int32     // len n+1: cumulative edge offsets into edgeBuf
	edgeEnds  []uint64    // bitset: entry i matched an edge's attribute type
	edgeBuf   []kg.EdgeID // concatenated edge sequences, entry order

	// termPool holds the distinct (Len, PR, Sim) triples of this word's
	// entries, in first-seen entry order (deterministic).
	termPool []core.ScoreTerms

	// Pattern-first view. Entries partition into (pattern, root) runs that
	// are contiguous across the whole word: run k spans
	// [runEnd[k-1], runEnd[k]). Run roots are stored delta-varint encoded
	// per pattern group in rootBytes with a skip table every
	// rootSkipInterval runs.
	runEnd     []int32
	rootBytes  []byte
	skipRoots  []kg.NodeID
	skipOffs   []int32 // byte offset in rootBytes just after the skip run's delta
	skipRun    []int32 // global run index of the skip point
	patGroups  []patGroup
	typeGroups []typeGroup

	// Root-first view: a permutation of entries sorted by (root, pattern),
	// partitioned per distinct root (rgEnd) into per-pattern runs
	// (rfPat/rfEnd, both indexing rootOrder).
	rootOrder []int32
	roots     []kg.NodeID // sorted distinct roots (root-first Roots(w))
	rgEnd     []int32     // per root: end position in rootOrder
	rgRunEnd  []int32     // per root: end run index in rfPat/rfEnd
	rfPat     []core.PatternID
	rfEnd     []int32
}

// numEntries returns the posting count.
func (wi *wordIndex) numEntries() int { return int(wi.n) }

// runStart returns the first entry of global run k.
func (wi *wordIndex) runStart(k int32) int32 {
	if k == 0 {
		return 0
	}
	return wi.runEnd[k-1]
}

// rfStart returns the first rootOrder position of root-first run k.
func (wi *wordIndex) rfStart(k int32) int32 {
	if k == 0 {
		return 0
	}
	return wi.rfEnd[k-1]
}

// rgStart returns the first rootOrder position of root group gi.
func (wi *wordIndex) rgStart(gi int) int32 {
	if gi == 0 {
		return 0
	}
	return wi.rgEnd[gi-1]
}

// rgRunStart returns the first root-first run of root group gi.
func (wi *wordIndex) rgRunStart(gi int) int32 {
	if gi == 0 {
		return 0
	}
	return wi.rgRunEnd[gi-1]
}

// edgeEndBit reports whether entry idx matched an edge's attribute type.
func (wi *wordIndex) edgeEndBit(idx int32) bool {
	return wi.edgeEnds[idx>>6]&(1<<uint(idx&63)) != 0
}

// fill materializes entry idx into e. pat and root come from the run the
// caller is iterating (they are not stored per entry).
func (wi *wordIndex) fill(e *Entry, idx int32, pat core.PatternID, root kg.NodeID) {
	lo, hi := wi.edgeStart[idx], wi.edgeStart[idx+1]
	e.Pattern = pat
	e.Root = root
	e.Terms = wi.termPool[wi.termRef[idx]]
	e.edges = wi.edgeBuf[lo:hi:hi]
	e.edgeEnd = wi.edgeEndBit(idx)
}

// decodeRootDelta reads one delta-varint from b, advancing prev. The first
// delta of a group is encoded against prev = -1, so deltas are always >= 1.
func decodeRootDelta(b []byte, off int32, prev kg.NodeID) (kg.NodeID, int32) {
	var d uint64
	var shift uint
	for {
		c := b[off]
		off++
		d |= uint64(c&0x7f) << shift
		if c < 0x80 {
			break
		}
		shift += 7
	}
	return prev + kg.NodeID(d), off
}

// groupRoot locates root r's run within pattern group pg: binary search the
// skip table, then decode forward at most rootSkipInterval-1 deltas.
// Returns the global run index, or false when no run for r exists.
func (wi *wordIndex) groupRoot(pg *patGroup, r kg.NodeID) (int32, bool) {
	skips := wi.skipRoots[pg.SkipStart:pg.SkipEnd]
	// Last skip point with root <= r.
	i := sort.Search(len(skips), func(i int) bool { return skips[i] > r }) - 1
	if i < 0 {
		return 0, false
	}
	si := pg.SkipStart + int32(i)
	if wi.skipRoots[si] == r {
		return wi.skipRun[si], true
	}
	prev := wi.skipRoots[si]
	off := wi.skipOffs[si]
	for k := wi.skipRun[si] + 1; k < pg.RunEnd; k++ {
		prev, off = decodeRootDelta(wi.rootBytes, off, prev)
		if prev == r {
			return k, true
		}
		if prev > r {
			return 0, false
		}
	}
	return 0, false
}

// Index is the pair of path-pattern indexes over a knowledge graph.
type Index struct {
	g     *kg.Graph
	d     int
	dict  *text.Dict
	pt    *core.PatternTable
	words []wordIndex // by canonical WordID; may be shorter than dict.Len()

	stats Stats
}

// Stats reports construction cost, the quantities of the paper's Figure 6.
type Stats struct {
	BuildTime   time.Duration
	Bytes       int64 // exact resident size of the columnar posting arenas
	NumEntries  int64 // total (word, path) postings
	NumPatterns int   // distinct path patterns interned
	D           int
}

// BytesPerEntry is the resident posting cost: Bytes averaged over the
// entries (0 when the index is empty).
func (s Stats) BytesPerEntry() float64 {
	if s.NumEntries == 0 {
		return 0
	}
	return float64(s.Bytes) / float64(s.NumEntries)
}

func (s Stats) String() string {
	return fmt.Sprintf("index{d=%d time=%v size=%.1fMB entries=%d (%.1fB/entry) patterns=%d}",
		s.D, s.BuildTime.Round(time.Millisecond), float64(s.Bytes)/(1<<20), s.NumEntries, s.BytesPerEntry(), s.NumPatterns)
}

// Graph returns the indexed graph.
func (ix *Index) Graph() *kg.Graph { return ix.g }

// D returns the height threshold the index was built with.
func (ix *Index) D() int { return ix.d }

// Dict returns the corpus dictionary (for query tokenization).
func (ix *Index) Dict() *text.Dict { return ix.dict }

// PatternTable returns the shared pattern interner.
func (ix *Index) PatternTable() *core.PatternTable { return ix.pt }

// Stats returns construction statistics.
func (ix *Index) Stats() Stats { return ix.stats }

// Path materializes the concrete path of an entry.
func (ix *Index) Path(w text.WordID, e *Entry) core.Path {
	return core.Path{Root: e.Root, Edges: e.edges, EdgeEnd: e.edgeEnd}
}

// word returns the posting structure for w, or nil when w has no postings.
func (ix *Index) word(w text.WordID) *wordIndex {
	if w < 0 || int(w) >= len(ix.words) {
		return nil
	}
	wi := &ix.words[w]
	if wi.n == 0 {
		return nil
	}
	return wi
}

// --- Pattern-first access methods (Figure 4a) ---

// Patterns returns all path patterns following which some root reaches w.
func (ix *Index) Patterns(w text.WordID) []core.PatternID {
	wi := ix.word(w)
	if wi == nil {
		return nil
	}
	out := make([]core.PatternID, len(wi.patGroups))
	for i := range wi.patGroups {
		out[i] = wi.patGroups[i].Pattern
	}
	return out
}

// PatternsOfType returns the path patterns rooted at type c that reach w:
// the paper's PatternsC(wi) of Algorithm 2 line 3.
func (ix *Index) PatternsOfType(w text.WordID, c kg.TypeID) []core.PatternID {
	wi := ix.word(w)
	if wi == nil {
		return nil
	}
	tg, ok := findTypeGroup(wi.typeGroups, c)
	if !ok {
		return nil
	}
	out := make([]core.PatternID, 0, tg.End-tg.Start)
	for i := tg.Start; i < tg.End; i++ {
		out = append(out, wi.patGroups[i].Pattern)
	}
	return out
}

// RootTypes returns the distinct root types of w's patterns, sorted.
func (ix *Index) RootTypes(w text.WordID) []kg.TypeID {
	wi := ix.word(w)
	if wi == nil {
		return nil
	}
	out := make([]kg.TypeID, len(wi.typeGroups))
	for i := range wi.typeGroups {
		out[i] = wi.typeGroups[i].Type
	}
	return out
}

// RootsOf returns the sorted distinct roots that reach w through pattern p.
func (ix *Index) RootsOf(w text.WordID, p core.PatternID) []kg.NodeID {
	wi := ix.word(w)
	if wi == nil {
		return nil
	}
	pg, ok := findPatGroup(wi.patGroups, ix.pt, p)
	if !ok {
		return nil
	}
	out := make([]kg.NodeID, 0, pg.RunEnd-pg.RunStart)
	prev := kg.NodeID(-1)
	off := pg.RootOff
	for k := pg.RunStart; k < pg.RunEnd; k++ {
		prev, off = decodeRootDelta(wi.rootBytes, off, prev)
		out = append(out, prev)
	}
	return out
}

// PathSet is a borrowed view of one (word, pattern, root) posting run. It
// is valid as long as the index is; At fills a caller-owned Entry so hot
// loops iterate without allocating.
type PathSet struct {
	wi   *wordIndex
	pat  core.PatternID
	root kg.NodeID
	lo   int32
	hi   int32
}

// Len returns the number of paths in the run.
func (ps *PathSet) Len() int { return int(ps.hi - ps.lo) }

// At materializes the k-th path of the run into e.
func (ps *PathSet) At(k int, e *Entry) {
	ps.wi.fill(e, ps.lo+int32(k), ps.pat, ps.root)
}

// FindPathsPF locates the run of entries with pattern p starting at root r
// (pattern-first Paths(w, P, r)). ok is false when the run is empty.
func (ix *Index) FindPathsPF(w text.WordID, p core.PatternID, r kg.NodeID) (PathSet, bool) {
	wi := ix.word(w)
	if wi == nil {
		return PathSet{}, false
	}
	pg, ok := findPatGroup(wi.patGroups, ix.pt, p)
	if !ok {
		return PathSet{}, false
	}
	k, ok := wi.groupRoot(&pg, r)
	if !ok {
		return PathSet{}, false
	}
	return PathSet{wi: wi, pat: p, root: r, lo: wi.runStart(k), hi: wi.runEnd[k]}, true
}

// PathsPF materializes the entries with pattern p starting at root r into a
// fresh slice. Prefer FindPathsPF on hot paths; this is the convenience
// form.
func (ix *Index) PathsPF(w text.WordID, p core.PatternID, r kg.NodeID) []Entry {
	ps, ok := ix.FindPathsPF(w, p, r)
	if !ok {
		return nil
	}
	out := make([]Entry, ps.Len())
	for k := range out {
		ps.At(k, &out[k])
	}
	return out
}

// PatternBounds summarizes one (word, pattern) posting group: the closed
// ranges of its per-path score terms and the largest per-root path count.
// The streaming executor sums these intervals across a query's keywords to
// bound any subtree score a pattern combination can produce (via
// core.Scorer.TreeUB) before expanding it — the top-k bound pushdown.
type PatternBounds struct {
	// MinLen..MaxSim bound the score terms of every path in the group.
	MinLen, MaxLen int
	MinPR, MaxPR   float64
	MinSim, MaxSim float64
	// MaxRun is max_r |Paths(w, P, r)|: no root contributes more than
	// MaxRun paths, so a root set R yields at most |R|·Π MaxRun_i valid
	// subtrees for a combination of patterns.
	MaxRun int
}

// PatternBounds returns the posting-group summary for (w, p), or false
// when the word has no postings under that pattern.
func (ix *Index) PatternBounds(w text.WordID, p core.PatternID) (PatternBounds, bool) {
	wi := ix.word(w)
	if wi == nil {
		return PatternBounds{}, false
	}
	pg, ok := findPatGroup(wi.patGroups, ix.pt, p)
	if !ok {
		return PatternBounds{}, false
	}
	b := pg.bounds
	return PatternBounds{
		MinLen: int(b.minLen), MaxLen: int(b.maxLen),
		MinPR: b.minPR, MaxPR: b.maxPR,
		MinSim: b.minSim, MaxSim: b.maxSim,
		MaxRun: int(b.maxRun),
	}, true
}

// --- Root-first access methods (Figure 4b) ---

// Roots returns the sorted distinct roots that can reach w at all.
func (ix *Index) Roots(w text.WordID) []kg.NodeID {
	wi := ix.word(w)
	if wi == nil {
		return nil
	}
	return wi.roots
}

// PatternsAt returns the patterns following which root r reaches w
// (root-first Patterns(w, r)).
func (ix *Index) PatternsAt(w text.WordID, r kg.NodeID) []core.PatternID {
	wi := ix.word(w)
	if wi == nil {
		return nil
	}
	gi, ok := findRoot(wi.roots, r)
	if !ok {
		return nil
	}
	lo, hi := wi.rgRunStart(gi), wi.rgRunEnd[gi]
	out := make([]core.PatternID, hi-lo)
	copy(out, wi.rfPat[lo:hi])
	return out
}

// NumPathsAt returns |Paths(w, r)| without materializing them
// (Algorithm 4 line 4 computes NR from these counts).
func (ix *Index) NumPathsAt(w text.WordID, r kg.NodeID) int {
	wi := ix.word(w)
	if wi == nil {
		return 0
	}
	gi, ok := findRoot(wi.roots, r)
	if !ok {
		return 0
	}
	return int(wi.rgEnd[gi] - wi.rgStart(gi))
}

// PathsAt invokes fn for every entry rooted at r (root-first Paths(w, r)),
// in (pattern, path) order. The *Entry passed to fn is reused across
// invocations; callers must copy what they keep (paths derived via Path
// stay valid — their edge slice aliases the immutable edge arena).
func (ix *Index) PathsAt(w text.WordID, r kg.NodeID, fn func(*Entry)) {
	wi := ix.word(w)
	if wi == nil {
		return
	}
	gi, ok := findRoot(wi.roots, r)
	if !ok {
		return
	}
	var e Entry
	for k := wi.rgRunStart(gi); k < wi.rgRunEnd[gi]; k++ {
		pat := wi.rfPat[k]
		for i := wi.rfStart(k); i < wi.rfEnd[k]; i++ {
			wi.fill(&e, wi.rootOrder[i], pat, r)
			fn(&e)
		}
	}
}

// PathsRF invokes fn for every entry rooted at r with pattern p (root-first
// Paths(w, r, P)). The *Entry is reused across invocations, as in PathsAt.
func (ix *Index) PathsRF(w text.WordID, r kg.NodeID, p core.PatternID, fn func(*Entry)) {
	wi, k, ok := ix.findRF(w, r, p)
	if !ok {
		return
	}
	var e Entry
	for i := wi.rfStart(k); i < wi.rfEnd[k]; i++ {
		wi.fill(&e, wi.rootOrder[i], p, r)
		fn(&e)
	}
}

// CountPathsRF returns |Paths(w, r, P)|.
func (ix *Index) CountPathsRF(w text.WordID, r kg.NodeID, p core.PatternID) int {
	wi, k, ok := ix.findRF(w, r, p)
	if !ok {
		return 0
	}
	return int(wi.rfEnd[k] - wi.rfStart(k))
}

// findRF locates the root-first run for (w, r, p).
func (ix *Index) findRF(w text.WordID, r kg.NodeID, p core.PatternID) (*wordIndex, int32, bool) {
	wi := ix.word(w)
	if wi == nil {
		return nil, 0, false
	}
	gi, ok := findRoot(wi.roots, r)
	if !ok {
		return nil, 0, false
	}
	lo, hi := wi.rgRunStart(gi), wi.rgRunEnd[gi]
	runs := wi.rfPat[lo:hi]
	i := sort.Search(len(runs), func(i int) bool { return runs[i] >= p })
	if i == len(runs) || runs[i] != p {
		return nil, 0, false
	}
	return wi, lo + int32(i), true
}

// --- binary searches over the group tables ---

func findTypeGroup(tgs []typeGroup, c kg.TypeID) (typeGroup, bool) {
	i := sort.Search(len(tgs), func(i int) bool { return tgs[i].Type >= c })
	if i == len(tgs) || tgs[i].Type != c {
		return typeGroup{}, false
	}
	return tgs[i], true
}

// findPatGroup locates the group for pattern p. Groups are sorted by
// (root type, pattern id), so the root type is recovered from the pattern.
func findPatGroup(pgs []patGroup, pt *core.PatternTable, p core.PatternID) (patGroup, bool) {
	rt := pt.Get(p).RootType()
	i := sort.Search(len(pgs), func(i int) bool {
		if pgs[i].RootType != rt {
			return pgs[i].RootType >= rt
		}
		return pgs[i].Pattern >= p
	})
	if i == len(pgs) || pgs[i].Pattern != p {
		return patGroup{}, false
	}
	return pgs[i], true
}

// findRoot locates r in the sorted distinct-root list.
func findRoot(roots []kg.NodeID, r kg.NodeID) (int, bool) {
	i := sort.Search(len(roots), func(i int) bool { return roots[i] >= r })
	if i == len(roots) || roots[i] != r {
		return 0, false
	}
	return i, true
}

// defaultWorkers resolves the worker count.
func defaultWorkers(w int) int {
	if w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// resolvePageRank picks the PR vector per Options.
func resolvePageRank(g *kg.Graph, o Options) []float64 {
	switch {
	case o.PageRank != nil:
		return o.PageRank
	case o.UniformPR:
		return rank.Uniform(g)
	default:
		return rank.PageRank(g, rank.Options{})
	}
}
