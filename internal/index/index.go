// Package index implements the paper's path-pattern based inverted indexes
// (Section 3, Algorithm 1). For every word w it materializes all paths that
// start at some root r, follow a pattern P, and end at a node or edge whose
// text (entity text, entity-type text, or attribute-type text) contains w.
//
// The same entry set is exposed in the two orders of Figure 4:
//
//	pattern-first: Patterns(w), Roots(w,P), Paths(w,P,r)   — used by PATTERNENUM
//	root-first:    Roots(w), Patterns(w,r), Paths(w,r[,P]) — used by LINEARENUM
//
// Entries carry the precomputed score terms |T(w)|, PR(f(w)) and
// sim(w,f(w)) so that online scoring is a constant-time fold per path
// (Section 3, last paragraph before Theorem 2).
package index

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"kbtable/internal/core"
	"kbtable/internal/kg"
	"kbtable/internal/rank"
	"kbtable/internal/text"
)

// Options configure index construction.
type Options struct {
	// D is the height threshold: indexed paths have at most D nodes
	// (counting an edge match's target node). Must be >= 1.
	D int
	// PageRank supplies per-node importance for score2. If nil, PageRank
	// is computed with the paper's defaults (a=0.85, eps=1e-8).
	PageRank []float64
	// UniformPR uses PR(v)=1 for all nodes (Example 2.4's assumption)
	// instead of computing PageRank. Ignored when PageRank is non-nil.
	UniformPR bool
	// Synonyms maps alias words to canonical words; both point at the same
	// posting list (Section 3: "every word has its stemmed version and
	// synonyms in our index pointing to the same path-pattern entry").
	Synonyms map[string]string
	// Workers bounds construction parallelism; defaults to GOMAXPROCS.
	Workers int
	// RootFilter, when non-nil, restricts the index to paths ROOTED at
	// accepted nodes: Build only DFSes from accepted roots, and ApplyDelta
	// only re-enumerates accepted dirty roots. Paths still traverse (and
	// words are still tokenized from) the whole graph — only the candidate
	// roots are partitioned. The shard layer passes its ownership test
	// here; an engine holding one filtered index per shard covers every
	// root exactly once. The same filter must be passed to every
	// maintenance call on indexes built with it.
	RootFilter func(kg.NodeID) bool
	// DirtyRoots optionally injects a precomputed kg.AffectedRoots(ch, D-1)
	// into ApplyDelta (before RootFilter is applied), so an engine applying
	// one delta to many shard indexes runs the affected-roots BFS once
	// instead of once per shard. Ignored by Build. nil means ApplyDelta
	// computes it.
	DirtyRoots []kg.NodeID
}

// Entry is one indexed path for one word: the path from Root following
// Pattern to a node/edge containing the word, plus precomputed score terms.
// The edge sequence lives in the per-word shared buffer (see wordIndex).
type Entry struct {
	Pattern core.PatternID
	Root    kg.NodeID
	edgeOff int32
	edgeLen uint8
	edgeEnd bool
	Terms   core.ScoreTerms
}

// patGroup is a run of entries with the same pattern (pattern-first order).
type patGroup struct {
	Pattern    core.PatternID
	RootType   kg.TypeID
	Start, End int32 // entry range
	RunStart   int32 // range in pfRuns
	RunEnd     int32
	// bounds summarize the group's score terms for the streaming
	// executor's pruning; derived in finishWord alongside the group scan,
	// so every construction path (build, delta, load) carries them without
	// a wire-format change.
	bounds patBounds
}

// patBounds are the per-(word, pattern) score-term ranges and the largest
// per-root path run, the raw material of PatternBounds.
type patBounds struct {
	minLen, maxLen int32
	minPR, maxPR   float64
	minSim, maxSim float64
	maxRun         int32
}

// rootRun is a run of entries with the same (pattern, root).
type rootRun struct {
	Root       kg.NodeID
	Start, End int32 // entry range
}

// typeGroup is a run of patGroups sharing a root type.
type typeGroup struct {
	Type       kg.TypeID
	Start, End int32 // patGroup range
}

// rootGroup is a run of the root-first permutation with the same root.
type rootGroup struct {
	Root       kg.NodeID
	Start, End int32 // range in rootOrder
	RunStart   int32 // range in rfRuns
	RunEnd     int32
}

// patRun is a run of rootOrder positions with the same pattern under one root.
type patRun struct {
	Pattern    core.PatternID
	Start, End int32 // range in rootOrder
}

// wordIndex holds both index views for one canonical word.
type wordIndex struct {
	entries []Entry     // sorted by (root type, pattern, root, path)
	edgeBuf []kg.EdgeID // backing storage for entry edge sequences

	// Pattern-first view.
	patGroups  []patGroup
	pfRuns     []rootRun
	typeGroups []typeGroup

	// Root-first view: a permutation of entries sorted by (root, pattern).
	rootOrder  []int32
	rootGroups []rootGroup
	rfRuns     []patRun

	// roots is the sorted distinct root list (root-first Roots(w)).
	roots []kg.NodeID
}

// Index is the pair of path-pattern indexes over a knowledge graph.
type Index struct {
	g     *kg.Graph
	d     int
	dict  *text.Dict
	pt    *core.PatternTable
	words []wordIndex // by canonical WordID; may be shorter than dict.Len()

	stats Stats
}

// Stats reports construction cost, the quantities of the paper's Figure 6.
type Stats struct {
	BuildTime   time.Duration
	Bytes       int64 // approximate resident size of the two indexes
	NumEntries  int64 // total (word, path) postings
	NumPatterns int   // distinct path patterns interned
	D           int
}

func (s Stats) String() string {
	return fmt.Sprintf("index{d=%d time=%v size=%.1fMB entries=%d patterns=%d}",
		s.D, s.BuildTime.Round(time.Millisecond), float64(s.Bytes)/(1<<20), s.NumEntries, s.NumPatterns)
}

// Graph returns the indexed graph.
func (ix *Index) Graph() *kg.Graph { return ix.g }

// D returns the height threshold the index was built with.
func (ix *Index) D() int { return ix.d }

// Dict returns the corpus dictionary (for query tokenization).
func (ix *Index) Dict() *text.Dict { return ix.dict }

// PatternTable returns the shared pattern interner.
func (ix *Index) PatternTable() *core.PatternTable { return ix.pt }

// Stats returns construction statistics.
func (ix *Index) Stats() Stats { return ix.stats }

// Path materializes the concrete path of an entry.
func (ix *Index) Path(w text.WordID, e *Entry) core.Path {
	wi := &ix.words[w]
	return core.Path{
		Root:    e.Root,
		Edges:   wi.edgeBuf[e.edgeOff : e.edgeOff+int32(e.edgeLen) : e.edgeOff+int32(e.edgeLen)],
		EdgeEnd: e.edgeEnd,
	}
}

// word returns the posting structure for w, or nil when w has no postings.
func (ix *Index) word(w text.WordID) *wordIndex {
	if w < 0 || int(w) >= len(ix.words) {
		return nil
	}
	wi := &ix.words[w]
	if len(wi.entries) == 0 {
		return nil
	}
	return wi
}

// --- Pattern-first access methods (Figure 4a) ---

// Patterns returns all path patterns following which some root reaches w.
func (ix *Index) Patterns(w text.WordID) []core.PatternID {
	wi := ix.word(w)
	if wi == nil {
		return nil
	}
	out := make([]core.PatternID, len(wi.patGroups))
	for i := range wi.patGroups {
		out[i] = wi.patGroups[i].Pattern
	}
	return out
}

// PatternsOfType returns the path patterns rooted at type c that reach w:
// the paper's PatternsC(wi) of Algorithm 2 line 3.
func (ix *Index) PatternsOfType(w text.WordID, c kg.TypeID) []core.PatternID {
	wi := ix.word(w)
	if wi == nil {
		return nil
	}
	tg, ok := findTypeGroup(wi.typeGroups, c)
	if !ok {
		return nil
	}
	out := make([]core.PatternID, 0, tg.End-tg.Start)
	for i := tg.Start; i < tg.End; i++ {
		out = append(out, wi.patGroups[i].Pattern)
	}
	return out
}

// RootTypes returns the distinct root types of w's patterns, sorted.
func (ix *Index) RootTypes(w text.WordID) []kg.TypeID {
	wi := ix.word(w)
	if wi == nil {
		return nil
	}
	out := make([]kg.TypeID, len(wi.typeGroups))
	for i := range wi.typeGroups {
		out[i] = wi.typeGroups[i].Type
	}
	return out
}

// RootsOf returns the sorted distinct roots that reach w through pattern p.
func (ix *Index) RootsOf(w text.WordID, p core.PatternID) []kg.NodeID {
	wi := ix.word(w)
	if wi == nil {
		return nil
	}
	pg, ok := findPatGroup(wi.patGroups, ix.pt, p)
	if !ok {
		return nil
	}
	out := make([]kg.NodeID, 0, pg.RunEnd-pg.RunStart)
	for i := pg.RunStart; i < pg.RunEnd; i++ {
		out = append(out, wi.pfRuns[i].Root)
	}
	return out
}

// PathsPF returns the entries with pattern p starting at root r
// (pattern-first Paths(w, P, r)). The returned slice is shared; callers
// must not modify it.
func (ix *Index) PathsPF(w text.WordID, p core.PatternID, r kg.NodeID) []Entry {
	wi := ix.word(w)
	if wi == nil {
		return nil
	}
	pg, ok := findPatGroup(wi.patGroups, ix.pt, p)
	if !ok {
		return nil
	}
	runs := wi.pfRuns[pg.RunStart:pg.RunEnd]
	i := sort.Search(len(runs), func(i int) bool { return runs[i].Root >= r })
	if i == len(runs) || runs[i].Root != r {
		return nil
	}
	return wi.entries[runs[i].Start:runs[i].End]
}

// PatternBounds summarizes one (word, pattern) posting group: the closed
// ranges of its per-path score terms and the largest per-root path count.
// The streaming executor sums these intervals across a query's keywords to
// bound any subtree score a pattern combination can produce (via
// core.Scorer.TreeUB) before expanding it — the top-k bound pushdown.
type PatternBounds struct {
	// MinLen..MaxSim bound the score terms of every path in the group.
	MinLen, MaxLen int
	MinPR, MaxPR   float64
	MinSim, MaxSim float64
	// MaxRun is max_r |Paths(w, P, r)|: no root contributes more than
	// MaxRun paths, so a root set R yields at most |R|·Π MaxRun_i valid
	// subtrees for a combination of patterns.
	MaxRun int
}

// PatternBounds returns the posting-group summary for (w, p), or false
// when the word has no postings under that pattern.
func (ix *Index) PatternBounds(w text.WordID, p core.PatternID) (PatternBounds, bool) {
	wi := ix.word(w)
	if wi == nil {
		return PatternBounds{}, false
	}
	pg, ok := findPatGroup(wi.patGroups, ix.pt, p)
	if !ok {
		return PatternBounds{}, false
	}
	b := pg.bounds
	return PatternBounds{
		MinLen: int(b.minLen), MaxLen: int(b.maxLen),
		MinPR: b.minPR, MaxPR: b.maxPR,
		MinSim: b.minSim, MaxSim: b.maxSim,
		MaxRun: int(b.maxRun),
	}, true
}

// --- Root-first access methods (Figure 4b) ---

// Roots returns the sorted distinct roots that can reach w at all.
func (ix *Index) Roots(w text.WordID) []kg.NodeID {
	wi := ix.word(w)
	if wi == nil {
		return nil
	}
	return wi.roots
}

// PatternsAt returns the patterns following which root r reaches w
// (root-first Patterns(w, r)).
func (ix *Index) PatternsAt(w text.WordID, r kg.NodeID) []core.PatternID {
	wi := ix.word(w)
	if wi == nil {
		return nil
	}
	rg, ok := findRootGroup(wi.rootGroups, r)
	if !ok {
		return nil
	}
	out := make([]core.PatternID, 0, rg.RunEnd-rg.RunStart)
	for i := rg.RunStart; i < rg.RunEnd; i++ {
		out = append(out, wi.rfRuns[i].Pattern)
	}
	return out
}

// NumPathsAt returns |Paths(w, r)| without materializing them
// (Algorithm 4 line 4 computes NR from these counts).
func (ix *Index) NumPathsAt(w text.WordID, r kg.NodeID) int {
	wi := ix.word(w)
	if wi == nil {
		return 0
	}
	rg, ok := findRootGroup(wi.rootGroups, r)
	if !ok {
		return 0
	}
	return int(rg.End - rg.Start)
}

// PathsAt invokes fn for every entry rooted at r (root-first Paths(w, r)),
// in (pattern, path) order.
func (ix *Index) PathsAt(w text.WordID, r kg.NodeID, fn func(*Entry)) {
	wi := ix.word(w)
	if wi == nil {
		return
	}
	rg, ok := findRootGroup(wi.rootGroups, r)
	if !ok {
		return
	}
	for i := rg.Start; i < rg.End; i++ {
		fn(&wi.entries[wi.rootOrder[i]])
	}
}

// PathsRF returns the entries rooted at r with pattern p (root-first
// Paths(w, r, P)) as entry indices resolved through the permutation; fn is
// called once per entry.
func (ix *Index) PathsRF(w text.WordID, r kg.NodeID, p core.PatternID, fn func(*Entry)) {
	wi := ix.word(w)
	if wi == nil {
		return
	}
	rg, ok := findRootGroup(wi.rootGroups, r)
	if !ok {
		return
	}
	runs := wi.rfRuns[rg.RunStart:rg.RunEnd]
	i := sort.Search(len(runs), func(i int) bool { return runs[i].Pattern >= p })
	if i == len(runs) || runs[i].Pattern != p {
		return
	}
	for j := runs[i].Start; j < runs[i].End; j++ {
		fn(&wi.entries[wi.rootOrder[j]])
	}
}

// CountPathsRF returns |Paths(w, r, P)|.
func (ix *Index) CountPathsRF(w text.WordID, r kg.NodeID, p core.PatternID) int {
	n := 0
	ix.PathsRF(w, r, p, func(*Entry) { n++ })
	return n
}

// --- binary searches over the group tables ---

func findTypeGroup(tgs []typeGroup, c kg.TypeID) (typeGroup, bool) {
	i := sort.Search(len(tgs), func(i int) bool { return tgs[i].Type >= c })
	if i == len(tgs) || tgs[i].Type != c {
		return typeGroup{}, false
	}
	return tgs[i], true
}

// findPatGroup locates the group for pattern p. Groups are sorted by
// (root type, pattern id), so the root type is recovered from the pattern.
func findPatGroup(pgs []patGroup, pt *core.PatternTable, p core.PatternID) (patGroup, bool) {
	rt := pt.Get(p).RootType()
	i := sort.Search(len(pgs), func(i int) bool {
		if pgs[i].RootType != rt {
			return pgs[i].RootType >= rt
		}
		return pgs[i].Pattern >= p
	})
	if i == len(pgs) || pgs[i].Pattern != p {
		return patGroup{}, false
	}
	return pgs[i], true
}

func findRootGroup(rgs []rootGroup, r kg.NodeID) (rootGroup, bool) {
	i := sort.Search(len(rgs), func(i int) bool { return rgs[i].Root >= r })
	if i == len(rgs) || rgs[i].Root != r {
		return rootGroup{}, false
	}
	return rgs[i], true
}

// defaultWorkers resolves the worker count.
func defaultWorkers(w int) int {
	if w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// resolvePageRank picks the PR vector per Options.
func resolvePageRank(g *kg.Graph, o Options) []float64 {
	switch {
	case o.PageRank != nil:
		return o.PageRank
	case o.UniformPR:
		return rank.Uniform(g)
	default:
		return rank.PageRank(g, rank.Options{})
	}
}
