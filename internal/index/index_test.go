package index

import (
	"sort"
	"testing"

	"kbtable/internal/core"
	"kbtable/internal/dataset"
	"kbtable/internal/kg"
	"kbtable/internal/text"
)

// buildFig1 builds the Figure 1 index with uniform PageRank (Example 2.4's
// assumption) at the given height threshold.
func buildFig1(t testing.TB, d int) (*Index, *kg.Graph, dataset.Fig1Nodes) {
	t.Helper()
	g, nodes := dataset.Fig1()
	ix, err := Build(g, Options{D: d, UniformPR: true, Workers: 2})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return ix, g, nodes
}

// wordID resolves a query word to its canonical id, failing if absent.
func wordID(t testing.TB, ix *Index, w string) text.WordID {
	t.Helper()
	ids, _ := ix.Dict().QueryTokens(w)
	if len(ids) != 1 || ids[0] == text.NoWord {
		t.Fatalf("word %q not found in index", w)
	}
	return ids[0]
}

// renderPatterns renders pattern IDs for readable assertions.
func renderPatterns(ix *Index, ids []core.PatternID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = ix.PatternTable().Get(id).Render(ix.Graph())
	}
	sort.Strings(out)
	return out
}

func TestBuildRejectsBadOptions(t *testing.T) {
	g, _ := dataset.Fig1()
	if _, err := Build(g, Options{D: 0}); err == nil {
		t.Errorf("D=0 must be rejected")
	}
	if _, err := Build(g, Options{D: 2, PageRank: []float64{1}}); err == nil {
		t.Errorf("wrong-size PageRank vector must be rejected")
	}
}

func TestFigure5PatternsForDatabase(t *testing.T) {
	// Figure 5: for word "database" with d=2 the patterns include
	// (Software)(Genre)(Model), (Software)(Reference)(Book), and (Book).
	ix, _, _ := buildFig1(t, 2)
	w := wordID(t, ix, "database")
	got := renderPatterns(ix, ix.Patterns(w))
	want := map[string]bool{
		"(Software) (Genre) (Model)":    false,
		"(Software) (Reference) (Book)": false,
		"(Book)":                        false,
		"(Model)":                       false, // the Model nodes themselves
	}
	for _, p := range got {
		if _, ok := want[p]; ok {
			want[p] = true
		}
	}
	for p, seen := range want {
		if !seen {
			t.Errorf("missing pattern %s in %v", p, got)
		}
	}
}

func TestFigure5RootsAndPaths(t *testing.T) {
	ix, g, nodes := buildFig1(t, 2)
	w := wordID(t, ix, "database")

	// Roots(w, (Software)(Reference)(Book)) = {v1} (SQL Server).
	var refBook core.PatternID = -1
	for _, pid := range ix.Patterns(w) {
		if ix.PatternTable().Get(pid).Render(g) == "(Software) (Reference) (Book)" {
			refBook = pid
		}
	}
	if refBook < 0 {
		t.Fatalf("pattern not found")
	}
	roots := ix.RootsOf(w, refBook)
	if len(roots) != 1 || roots[0] != nodes.SQLServer {
		t.Errorf("Roots = %v, want [SQLServer=%d]", roots, nodes.SQLServer)
	}

	// Root-first: Roots(w) = {v1, v7, v12} plus the Model literals
	// (Relational database / O-R database nodes contain "database" too).
	all := ix.Roots(w)
	mustContain := []kg.NodeID{nodes.SQLServer, nodes.OracleDB, nodes.Book, nodes.RelDB, nodes.ORDB}
	for _, r := range mustContain {
		if !containsNode(all, r) {
			t.Errorf("Roots(database) missing node %d; got %v", r, all)
		}
	}
	// Paths(w, v1, (Software)(Genre)(Model)) returns exactly one path v1v2.
	var genreModel core.PatternID = -1
	for _, pid := range ix.PatternsAt(w, nodes.SQLServer) {
		if ix.PatternTable().Get(pid).Render(g) == "(Software) (Genre) (Model)" {
			genreModel = pid
		}
	}
	if genreModel < 0 {
		t.Fatalf("root-first PatternsAt missing (Software)(Genre)(Model); got %v",
			renderPatterns(ix, ix.PatternsAt(w, nodes.SQLServer)))
	}
	count := 0
	ix.PathsRF(w, nodes.SQLServer, genreModel, func(e *Entry) {
		count++
		p := ix.Path(w, e)
		if p.Root != nodes.SQLServer || p.Leaf(g) != nodes.RelDB {
			t.Errorf("path wrong: %+v", p)
		}
	})
	if count != 1 {
		t.Errorf("Paths(database, v1, genre-model) = %d paths, want 1", count)
	}
}

func TestEdgeMatchIndexed(t *testing.T) {
	// "revenue" only occurs as an attribute type: all entries are edge-end.
	ix, g, nodes := buildFig1(t, 3)
	w := wordID(t, ix, "revenue")
	pats := ix.Patterns(w)
	if len(pats) == 0 {
		t.Fatalf("no patterns for revenue")
	}
	for _, pid := range pats {
		if !ix.PatternTable().Get(pid).EdgeEnd {
			t.Errorf("revenue pattern should be edge-end: %s", ix.PatternTable().Get(pid).Render(g))
		}
	}
	// With d=3 the pattern (Software)(Developer)(Company)(Revenue) exists
	// with roots {v1, v7}.
	var target core.PatternID = -1
	for _, pid := range pats {
		if ix.PatternTable().Get(pid).Render(g) == "(Software) (Developer) (Company) (Revenue)" {
			target = pid
		}
	}
	if target < 0 {
		t.Fatalf("missing d=3 revenue pattern; got %v", renderPatterns(ix, pats))
	}
	roots := ix.RootsOf(w, target)
	if len(roots) != 2 || roots[0] != nodes.SQLServer || roots[1] != nodes.OracleDB {
		t.Errorf("roots = %v, want [%d %d]", roots, nodes.SQLServer, nodes.OracleDB)
	}
	// Entry score terms: Len counts the literal target (3 nodes per
	// Example 2.4), Sim = 1 (single-token attribute "Revenue").
	es := ix.PathsPF(w, target, nodes.SQLServer)
	if len(es) != 1 {
		t.Fatalf("paths = %d, want 1", len(es))
	}
	if es[0].Terms.Len != 3 || es[0].Terms.Sim != 1 || es[0].Terms.PR != 1 {
		t.Errorf("terms = %+v", es[0].Terms)
	}
	p := ix.Path(w, &es[0])
	if !p.EdgeEnd || p.MatchNode(g) != nodes.Microsoft || p.Leaf(g) != nodes.MSRevenue {
		t.Errorf("edge path wrong: %+v", p)
	}
}

func TestHeightThresholdRespected(t *testing.T) {
	for _, d := range []int{1, 2, 3, 4} {
		ix, _, _ := buildFig1(t, d)
		for w := 0; w < ix.Dict().Len(); w++ {
			for _, pid := range ix.Patterns(text.WordID(w)) {
				if l := ix.PatternTable().Get(pid).Len(); l > d {
					t.Errorf("d=%d: pattern of length %d indexed", d, l)
				}
			}
		}
	}
}

func TestD1OnlyRootMatches(t *testing.T) {
	ix, _, _ := buildFig1(t, 1)
	w := wordID(t, ix, "database")
	for _, pid := range ix.Patterns(w) {
		p := ix.PatternTable().Get(pid)
		if p.Len() != 1 || p.EdgeEnd {
			t.Errorf("d=1 should only index root-only node matches, got %s", p.Render(ix.Graph()))
		}
	}
	// "revenue" (attribute-only) has no postings at d=1.
	ids, _ := ix.Dict().QueryTokens("revenue")
	if len(ids) == 1 && ids[0] != text.NoWord {
		if len(ix.Patterns(ids[0])) != 0 {
			t.Errorf("revenue should have no patterns at d=1")
		}
	}
}

func TestIndexSizeGrowsWithD(t *testing.T) {
	var prev int64
	for _, d := range []int{1, 2, 3, 4} {
		ix, _, _ := buildFig1(t, d)
		s := ix.Stats()
		if s.NumEntries <= 0 || s.Bytes <= 0 {
			t.Fatalf("d=%d: empty stats %+v", d, s)
		}
		if s.NumEntries < prev {
			t.Errorf("entries should not shrink as d grows: d=%d has %d < %d", d, s.NumEntries, prev)
		}
		prev = s.NumEntries
	}
}

func TestTypeVsTextSimMax(t *testing.T) {
	// "software" appears in the type "Software" (1 token, sim 1); for the
	// SQL Server root entry, sim must be 1 even though it is absent from
	// the node text.
	ix, _, nodes := buildFig1(t, 1)
	w := wordID(t, ix, "software")
	found := false
	ix.PathsAt(w, nodes.SQLServer, func(e *Entry) {
		found = true
		if e.Terms.Sim != 1 {
			t.Errorf("sim for type-matched 'software' = %v, want 1", e.Terms.Sim)
		}
	})
	if !found {
		t.Errorf("no root-only entry for software at SQL Server")
	}
	// "server" appears only in the node text "SQL Server" (2 tokens): 1/2.
	ws := wordID(t, ix, "server")
	ix.PathsAt(ws, nodes.SQLServer, func(e *Entry) {
		if e.Terms.Sim != 0.5 {
			t.Errorf("sim for text-matched 'server' = %v, want 0.5", e.Terms.Sim)
		}
	})
}

func TestStemmedQueryReachesPostings(t *testing.T) {
	// Corpus has "database"; query "databases" must reach the same postings.
	ix, _, _ := buildFig1(t, 2)
	ids, _ := ix.Dict().QueryTokens("databases")
	if len(ids) != 1 || ids[0] == text.NoWord {
		t.Fatalf("stemmed lookup failed")
	}
	if len(ix.Roots(ids[0])) == 0 {
		t.Errorf("no roots via stemmed form")
	}
}

func TestSynonyms(t *testing.T) {
	g, _ := dataset.Fig1()
	ix, err := Build(g, Options{D: 2, UniformPR: true, Synonyms: map[string]string{"corporation": "company"}})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	ids, _ := ix.Dict().QueryTokens("corporation")
	if len(ids) != 1 || ids[0] == text.NoWord {
		t.Fatalf("synonym not interned")
	}
	if len(ix.Roots(ids[0])) == 0 {
		t.Errorf("synonym should reach company postings")
	}
}

func TestUnknownWordHasNoPostings(t *testing.T) {
	ix, _, _ := buildFig1(t, 2)
	if ix.Patterns(text.NoWord) != nil {
		t.Errorf("NoWord should have nil patterns")
	}
	if ix.Roots(text.WordID(999999)) != nil {
		t.Errorf("out-of-range word should have nil roots")
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	g, _ := dataset.Fig1()
	ix1, err := Build(g, Options{D: 3, UniformPR: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ix2, err := Build(g, Options{D: 3, UniformPR: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if ix1.Stats().NumEntries != ix2.Stats().NumEntries {
		t.Fatalf("entry counts differ: %d vs %d", ix1.Stats().NumEntries, ix2.Stats().NumEntries)
	}
	w1 := wordID(t, ix1, "database")
	w2 := wordID(t, ix2, "database")
	r1 := ix1.Roots(w1)
	r2 := ix2.Roots(w2)
	if len(r1) != len(r2) {
		t.Fatalf("roots differ: %v vs %v", r1, r2)
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("root order differs at %d", i)
		}
	}
	// Same paths per root and pattern, in the same order.
	for _, r := range r1 {
		p1 := renderPatterns(ix1, ix1.PatternsAt(w1, r))
		p2 := renderPatterns(ix2, ix2.PatternsAt(w2, r))
		if len(p1) != len(p2) {
			t.Fatalf("patterns at root %d differ", r)
		}
		for i := range p1 {
			if p1[i] != p2[i] {
				t.Fatalf("pattern %d at root %d differs: %s vs %s", i, r, p1[i], p2[i])
			}
		}
	}
}

func TestNumPathsAtMatchesEnumeration(t *testing.T) {
	ix, _, _ := buildFig1(t, 3)
	w := wordID(t, ix, "database")
	for _, r := range ix.Roots(w) {
		n := 0
		ix.PathsAt(w, r, func(*Entry) { n++ })
		if got := ix.NumPathsAt(w, r); got != n {
			t.Errorf("NumPathsAt(%d) = %d, enumeration = %d", r, got, n)
		}
	}
	if ix.NumPathsAt(w, kg.NodeID(9999)) != 0 {
		t.Errorf("unknown root should count 0")
	}
}

func TestSimplePathsNoCycles(t *testing.T) {
	// r <-> a two-cycle: indexed paths must never revisit a node.
	b := kg.NewBuilder()
	r := b.Entity("T", "alpha")
	a := b.Entity("U", "beta")
	b.Attr(r, "x", a)
	b.Attr(a, "y", r)
	g := b.MustFreeze()
	ix, err := Build(g, Options{D: 4, UniformPR: true})
	if err != nil {
		t.Fatal(err)
	}
	w := wordID(t, ix, "alpha")
	for _, pid := range ix.Patterns(w) {
		if l := ix.PatternTable().Get(pid).Len(); l > 2 {
			t.Errorf("cycle produced pattern of length %d: %s", l, ix.PatternTable().Get(pid).Render(g))
		}
	}
}

func containsNode(s []kg.NodeID, v kg.NodeID) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
