package index

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"kbtable/internal/kg"
	"kbtable/internal/text"
)

// entryDesc is the content-level identity of one posting: everything the
// query algorithms can observe, with interned IDs replaced by content keys
// (PatternIDs are assigned in DFS-encounter order, which legitimately
// differs between an incrementally maintained index and a rebuild).
type entryDesc struct {
	PatKey  string
	Root    kg.NodeID
	Edges   string
	EdgeEnd bool
	Len     int
	PR      float64
	Sim     float64
}

// canonical flattens an index into word-surface -> sorted postings.
func canonical(ix *Index) map[string][]entryDesc {
	out := make(map[string][]entryDesc)
	for w := range ix.words {
		wi := &ix.words[w]
		if wi.n == 0 {
			continue
		}
		surface := ix.dict.Word(text.WordID(w))
		flat, buf := wi.flatten()
		descs := make([]entryDesc, 0, len(flat))
		for i := range flat {
			e := &flat[i]
			edges := ""
			for _, eid := range buf[e.edgeOff : e.edgeOff+e.edgeLen] {
				edges += fmt.Sprintf("%d,", eid)
			}
			descs = append(descs, entryDesc{
				PatKey:  ix.pt.Get(e.pattern).Key(),
				Root:    e.root,
				Edges:   edges,
				EdgeEnd: e.edgeEnd,
				Len:     e.terms.Len,
				PR:      e.terms.PR,
				Sim:     e.terms.Sim,
			})
		}
		sort.Slice(descs, func(i, j int) bool {
			a, b := descs[i], descs[j]
			if a.PatKey != b.PatKey {
				return a.PatKey < b.PatKey
			}
			if a.Root != b.Root {
				return a.Root < b.Root
			}
			return a.Edges < b.Edges
		})
		out[surface] = descs
	}
	return out
}

func diffCanonical(t *testing.T, label string, inc, reb map[string][]entryDesc) {
	t.Helper()
	for w, want := range reb {
		got, ok := inc[w]
		if !ok {
			t.Errorf("%s: incremental index lost word %q (%d postings)", label, w, len(want))
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: postings differ for %q:\n inc %+v\n reb %+v", label, w, got, want)
		}
	}
	for w, got := range inc {
		if _, ok := reb[w]; !ok {
			t.Errorf("%s: incremental index has spurious word %q (%d postings)", label, w, len(got))
		}
	}
}

// randomMutGraph builds a random graph whose texts overlap heavily, so
// posting lists genuinely share words across roots.
func randomMutGraph(rng *rand.Rand) *kg.Graph {
	vocab := []string{"alpha", "beta", "gamma", "delta", "omega", "sigma"}
	types := []string{"City", "Person", "Company", "Product"}
	attrs := []string{"knows", "owns", "near", "makes"}
	b := kg.NewBuilder()
	n := 8 + rng.Intn(16)
	ids := make([]kg.NodeID, n)
	for i := 0; i < n; i++ {
		txt := vocab[rng.Intn(len(vocab))]
		if rng.Intn(2) == 0 {
			txt += " " + vocab[rng.Intn(len(vocab))]
		}
		ids[i] = b.Entity(types[rng.Intn(len(types))], txt)
	}
	for i := 0; i < 2*n; i++ {
		b.Attr(ids[rng.Intn(n)], attrs[rng.Intn(len(attrs))], ids[rng.Intn(n)])
	}
	return b.MustFreeze()
}

// randomDelta stages 1..5 random valid mutations; ops that fail eager
// validation (e.g. attaching to a literal) are simply skipped.
func randomDelta(rng *rand.Rand, g *kg.Graph) *kg.Delta {
	vocab := []string{"alpha", "beta", "gamma", "nu", "xi"}
	types := []string{"City", "Person", "Startup"}
	attrs := []string{"knows", "owns", "funds"}
	d := kg.NewDelta(g)
	staged := 0
	var added []kg.NodeID
	pick := func() kg.NodeID {
		if len(added) > 0 && rng.Intn(3) == 0 {
			return added[rng.Intn(len(added))]
		}
		return kg.NodeID(rng.Intn(g.NumNodes()))
	}
	for op := 0; op < 1+rng.Intn(5) || staged == 0; op++ {
		if op > 30 {
			break
		}
		switch rng.Intn(6) {
		case 0:
			if v, err := d.AddEntity(types[rng.Intn(len(types))], vocab[rng.Intn(len(vocab))]); err == nil {
				added = append(added, v)
				staged++
			}
		case 1:
			if d.AddAttr(pick(), attrs[rng.Intn(len(attrs))], pick()) == nil {
				staged++
			}
		case 2:
			if _, err := d.AddTextAttr(pick(), "note", vocab[rng.Intn(len(vocab))]+" memo"); err == nil {
				staged++
			}
		case 3:
			if g.NumEdges() > 0 {
				e := g.Edge(kg.EdgeID(rng.Intn(g.NumEdges())))
				if _, err := d.RemoveEdge(e.Src, g.AttrName(e.Attr), e.Dst); err == nil {
					staged++
				}
			}
		case 4:
			if d.RemoveEntity(kg.NodeID(rng.Intn(g.NumNodes()))) == nil {
				staged++
			}
		case 5:
			if d.SetText(kg.NodeID(rng.Intn(g.NumNodes())), vocab[rng.Intn(len(vocab))]) == nil {
				staged++
			}
		}
	}
	return d
}

// TestApplyDeltaMatchesRebuild is the core maintenance property: after any
// chain of random updates, the incrementally maintained index must be
// content-identical to a from-scratch Build of the final snapshot — same
// posting lists, same paths, same precomputed score terms — under both
// uniform-PR and PageRank scoring.
func TestApplyDeltaMatchesRebuild(t *testing.T) {
	seqs := int64(60)
	if testing.Short() {
		seqs = 12
	}
	for seed := int64(0); seed < seqs; seed++ {
		rng := rand.New(rand.NewSource(seed))
		uniform := seed%2 == 0 // odd seeds exercise the PageRank refresh path
		d := 2 + rng.Intn(2)
		opts := Options{D: d, UniformPR: uniform}
		g := randomMutGraph(rng)
		ix, err := Build(g, opts)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		before := canonical(ix)

		steps := 1 + rng.Intn(3)
		cur := ix
		for s := 0; s < steps; s++ {
			ch, err := randomDelta(rng, cur.Graph()).Apply()
			if err != nil {
				t.Fatalf("seed %d step %d: %v", seed, s, err)
			}
			next, ds, err := cur.ApplyDelta(ch, opts)
			if err != nil {
				t.Fatalf("seed %d step %d: %v", seed, s, err)
			}
			if ds.DirtyRoots == 0 {
				t.Fatalf("seed %d step %d: change with no dirty roots", seed, s)
			}
			cur = next
		}

		reb, err := Build(cur.Graph(), opts)
		if err != nil {
			t.Fatalf("seed %d rebuild: %v", seed, err)
		}
		label := fmt.Sprintf("seed=%d d=%d uniform=%v", seed, d, uniform)
		diffCanonical(t, label, canonical(cur), canonical(reb))
		if cur.stats.NumEntries != reb.stats.NumEntries {
			t.Errorf("%s: NumEntries %d vs %d", label, cur.stats.NumEntries, reb.stats.NumEntries)
		}

		// Copy-on-write: the base index must be untouched.
		if !reflect.DeepEqual(canonical(ix), before) {
			t.Fatalf("%s: ApplyDelta mutated the base index", label)
		}

		// Spot-check the derived views through the public API.
		for _, w := range []string{"alpha", "beta", "knows", "person"} {
			wi := cur.dict.Lookup(w)
			wr := reb.dict.Lookup(w)
			var rootsInc, rootsReb []kg.NodeID
			if wi >= 0 {
				rootsInc = cur.Roots(cur.dict.Canonical(wi))
			}
			if wr >= 0 {
				rootsReb = reb.Roots(reb.dict.Canonical(wr))
			}
			if !reflect.DeepEqual(rootsInc, rootsReb) {
				t.Errorf("%s: Roots(%q) differ: %v vs %v", label, w, rootsInc, rootsReb)
			}
			for i := 0; i < len(rootsInc); i++ {
				if cur.NumPathsAt(cur.dict.Canonical(wi), rootsInc[i]) != reb.NumPathsAt(reb.dict.Canonical(wr), rootsReb[i]) {
					t.Errorf("%s: NumPathsAt(%q, %d) differ", label, w, rootsInc[i])
				}
			}
		}
	}
}

// TestApplyDeltaValidation covers the guard rails.
func TestApplyDeltaValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomMutGraph(rng)
	ix, err := Build(g, Options{D: 3, UniformPR: true})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := randomDelta(rng, g).Apply()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ix.ApplyDelta(nil, Options{}); err == nil {
		t.Fatal("nil change accepted")
	}
	if _, _, err := ix.ApplyDelta(ch, Options{D: 2, UniformPR: true}); err == nil {
		t.Fatal("mismatched D accepted")
	}
	// A change computed against a different snapshot must be rejected.
	other, _ := Build(randomMutGraph(rand.New(rand.NewSource(2))), Options{D: 3, UniformPR: true})
	if _, _, err := other.ApplyDelta(ch, Options{D: 3, UniformPR: true}); err == nil {
		t.Fatal("change against foreign graph accepted")
	}
	// And the happy path still works after all those rejections.
	if _, _, err := ix.ApplyDelta(ch, Options{D: 3, UniformPR: true}); err != nil {
		t.Fatal(err)
	}
}

// TestApplyDeltaLocality: an edit in one corner of a long chain must not
// dirty roots beyond its d-neighborhood — the whole point of incremental
// maintenance.
func TestApplyDeltaLocality(t *testing.T) {
	b := kg.NewBuilder()
	const n = 64
	ids := make([]kg.NodeID, n)
	for i := range ids {
		ids[i] = b.Entity("Station", fmt.Sprintf("stop %d", i))
	}
	for i := 0; i+1 < n; i++ {
		b.Attr(ids[i], "next", ids[i+1])
	}
	g := b.MustFreeze()
	ix, err := Build(g, Options{D: 3, UniformPR: true})
	if err != nil {
		t.Fatal(err)
	}
	d := kg.NewDelta(g)
	if err := d.SetText(ids[n-1], "terminus"); err != nil {
		t.Fatal(err)
	}
	ch, err := d.Apply()
	if err != nil {
		t.Fatal(err)
	}
	next, ds, err := ix.ApplyDelta(ch, Options{D: 3, UniformPR: true})
	if err != nil {
		t.Fatal(err)
	}
	if ds.DirtyRoots != 3 { // ids[n-3..n-1]: within 2 edges of the change
		t.Fatalf("dirty roots = %d, want 3", ds.DirtyRoots)
	}
	reb, err := Build(ch.New, Options{D: 3, UniformPR: true})
	if err != nil {
		t.Fatal(err)
	}
	diffCanonical(t, "chain", canonical(next), canonical(reb))
}
