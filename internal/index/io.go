package index

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"time"

	"kbtable/internal/core"
	"kbtable/internal/kg"
	"kbtable/internal/text"
)

// The wire format stores the dictionary, the interned patterns, and the
// raw posting lists; the pattern-first / root-first group tables are
// rebuilt on load (they are derived data and sort faster than DFS).
//
// WireVersion is the index wire-format version this build writes.
//
//   - Versions 0 and 1 are the legacy gob container (version 0 predates
//     the durable snapshot store; the field simply decodes to zero).
//   - Version 2 is the binary columnar container of wire2.go:
//     length-prefixed CRC-32C-framed sections encoded and decoded with
//     per-word parallelism.
//
// Load sniffs the container (v2 files start with the wireMagic bytes,
// gob streams cannot) and reads all of 0/1/2; Encode always writes the
// current version and anything newer is refused with a clear error
// instead of gob soup. Bump WireVersion when the posting layout changes,
// and regenerate the snapshot fixture (make snapshot-fixture).
const WireVersion = 2

type entryWire struct {
	Pattern core.PatternID
	Root    kg.NodeID
	EdgeOff int32
	EdgeLen uint8
	EdgeEnd bool
	Len     uint8
	PR      float64
	Sim     float64
}

type wordWire struct {
	Entries []entryWire
	EdgeBuf []kg.EdgeID
}

type indexWire struct {
	// Version is the wire-format version (see WireVersion).
	Version  int
	D        int
	Dict     text.Snapshot
	Patterns []core.PathPattern
	Words    []wordWire
	// Graph fingerprint: load refuses an index built for a different graph.
	Nodes, Edges int
}

// Encode serializes the index in the current wire format (WireVersion).
// The graph itself is not included; pair the index file with the graph
// file it was built from (Load verifies node and edge counts).
func (ix *Index) Encode(w io.Writer) error {
	return ix.encodeV2(w)
}

// EncodeLegacyGob serializes the index in the legacy v1 gob container.
// Retained so the backward-compat fixture can be regenerated and so the
// benchmark suite can measure the v2 format against the gob baseline it
// replaced; new snapshots should use Encode.
func (ix *Index) EncodeLegacyGob(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := gob.NewEncoder(bw)
	wire := indexWire{
		Version:  1,
		D:        ix.d,
		Dict:     ix.dict.Snapshot(),
		Patterns: ix.pt.Snapshot(),
		Words:    make([]wordWire, len(ix.words)),
		Nodes:    ix.g.NumNodes(),
		Edges:    ix.g.NumEdges(),
	}
	for i := range ix.words {
		wi := &ix.words[i]
		if wi.n == 0 {
			continue
		}
		flat, buf := wi.flatten()
		ww := wordWire{EdgeBuf: buf}
		ww.Entries = make([]entryWire, len(flat))
		for j, e := range flat {
			ww.Entries[j] = entryWire{
				Pattern: e.pattern,
				Root:    e.root,
				EdgeOff: e.edgeOff,
				EdgeLen: uint8(e.edgeLen),
				EdgeEnd: e.edgeEnd,
				Len:     uint8(e.terms.Len),
				PR:      e.terms.PR,
				Sim:     e.terms.Sim,
			}
		}
		wire.Words[i] = ww
	}
	if err := enc.Encode(&wire); err != nil {
		return fmt.Errorf("index: encode: %w", err)
	}
	return bw.Flush()
}

// Load reads an index written by any supported wire version (v2 binary or
// the legacy v0/v1 gob container) and re-derives the two access views
// against the supplied graph.
func Load(r io.Reader, g *kg.Graph) (*Index, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head, err := br.Peek(len(wireMagic))
	if err == nil && string(head) == wireMagic {
		return loadV2(br, g)
	}
	return loadGob(br, g)
}

// loadGob reads the legacy v0/v1 gob container.
func loadGob(br *bufio.Reader, g *kg.Graph) (*Index, error) {
	start := time.Now()
	dec := gob.NewDecoder(br)
	var wire indexWire
	if err := dec.Decode(&wire); err != nil {
		return nil, fmt.Errorf("index: decode: %w", err)
	}
	if wire.Version > WireVersion {
		return nil, fmt.Errorf("index: wire-format version %d not supported (this build reads up to %d)", wire.Version, WireVersion)
	}
	if wire.Nodes != g.NumNodes() || wire.Edges != g.NumEdges() {
		return nil, fmt.Errorf("index: built for a graph with %d nodes/%d edges, got %d/%d",
			wire.Nodes, wire.Edges, g.NumNodes(), g.NumEdges())
	}
	if wire.D < 1 {
		return nil, fmt.Errorf("index: invalid height threshold %d", wire.D)
	}
	dict, err := text.FromSnapshot(wire.Dict)
	if err != nil {
		return nil, err
	}
	ix := &Index{
		g:    g,
		d:    wire.D,
		dict: dict,
		pt:   core.TableFromSnapshot(wire.Patterns),
	}
	patRootType := patternRootTypes(ix.pt)
	ix.words = make([]wordIndex, len(wire.Words))
	for i := range wire.Words {
		ww := &wire.Words[i]
		if len(ww.Entries) == 0 {
			continue
		}
		flat := make([]flatEntry, len(ww.Entries))
		for j, e := range ww.Entries {
			if int(e.Pattern) >= ix.pt.Len() || e.Pattern < 0 {
				return nil, fmt.Errorf("index: entry references unknown pattern %d", e.Pattern)
			}
			if int(e.Root) >= g.NumNodes() || e.Root < 0 {
				return nil, fmt.Errorf("index: entry references node %d out of range", e.Root)
			}
			if int(e.EdgeOff)+int(e.EdgeLen) > len(ww.EdgeBuf) || e.EdgeOff < 0 {
				return nil, fmt.Errorf("index: entry edge range out of bounds")
			}
			flat[j] = flatEntry{
				pattern: e.Pattern,
				root:    e.Root,
				edgeOff: e.EdgeOff,
				edgeLen: int32(e.EdgeLen),
				edgeEnd: e.EdgeEnd,
				terms:   core.ScoreTerms{Len: int(e.Len), PR: e.PR, Sim: e.Sim},
			}
		}
		finishWord(&ix.words[i], flat, ww.EdgeBuf, patRootType)
		ix.stats.NumEntries += int64(len(ww.Entries))
	}
	ix.stats.D = wire.D
	ix.stats.NumPatterns = ix.pt.Len()
	ix.stats.Bytes = ix.sizeBytes()
	ix.stats.BuildTime = time.Since(start) // load time; cheaper than DFS
	return ix, nil
}

// SniffWireVersion reports the wire version of an encoded index stream
// from its first bytes: WireVersion (2) for the binary container, 1 for
// anything else (the legacy gob container does not distinguish 0 from 1
// without a full decode). It consumes nothing beyond r's internal
// buffering. Used by cold-start harnesses to assert which format a
// recovery actually read.
func SniffWireVersion(r io.Reader) (int, error) {
	head := make([]byte, len(wireMagic))
	if _, err := io.ReadFull(r, head); err != nil {
		return 0, fmt.Errorf("index: sniff: %w", err)
	}
	if string(head) == wireMagic {
		return WireVersion, nil
	}
	return 1, nil
}

// FileWireVersion is SniffWireVersion over a file.
func FileWireVersion(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("index: open %s: %w", path, err)
	}
	defer f.Close()
	return SniffWireVersion(f)
}

// SaveFile writes the index to path.
func (ix *Index) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("index: create %s: %w", path, err)
	}
	defer f.Close()
	if err := ix.Encode(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads an index from path against the given graph.
func LoadFile(path string, g *kg.Graph) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("index: open %s: %w", path, err)
	}
	defer f.Close()
	return Load(f, g)
}
