package index

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"time"

	"kbtable/internal/core"
	"kbtable/internal/kg"
	"kbtable/internal/text"
)

// The wire format stores the dictionary, the interned patterns, and the
// raw posting lists; the pattern-first / root-first group tables are
// rebuilt on load (they are derived data and sort faster than DFS).
//
// WireVersion is the index wire-format version this build writes.
// Version 0 (files written before the durable snapshot store existed)
// is identical on the wire — the field simply decodes to zero — so
// Load accepts 0 and WireVersion and refuses anything newer with a
// clear error instead of gob soup. Bump it when the entry layout
// changes, and regenerate the snapshot fixture (make snapshot-fixture).
const WireVersion = 1

type entryWire struct {
	Pattern core.PatternID
	Root    kg.NodeID
	EdgeOff int32
	EdgeLen uint8
	EdgeEnd bool
	Len     uint8
	PR      float64
	Sim     float64
}

type wordWire struct {
	Entries []entryWire
	EdgeBuf []kg.EdgeID
}

type indexWire struct {
	// Version is the wire-format version (see WireVersion).
	Version  int
	D        int
	Dict     text.Snapshot
	Patterns []core.PathPattern
	Words    []wordWire
	// Graph fingerprint: load refuses an index built for a different graph.
	Nodes, Edges int
}

// Encode serializes the index. The graph itself is not included; pair the
// index file with the graph file it was built from (Load verifies node and
// edge counts).
func (ix *Index) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := gob.NewEncoder(bw)
	wire := indexWire{
		Version:  WireVersion,
		D:        ix.d,
		Dict:     ix.dict.Snapshot(),
		Patterns: ix.pt.Snapshot(),
		Words:    make([]wordWire, len(ix.words)),
		Nodes:    ix.g.NumNodes(),
		Edges:    ix.g.NumEdges(),
	}
	for i := range ix.words {
		wi := &ix.words[i]
		ww := wordWire{EdgeBuf: wi.edgeBuf}
		ww.Entries = make([]entryWire, len(wi.entries))
		for j, e := range wi.entries {
			ww.Entries[j] = entryWire{
				Pattern: e.Pattern,
				Root:    e.Root,
				EdgeOff: e.edgeOff,
				EdgeLen: e.edgeLen,
				EdgeEnd: e.edgeEnd,
				Len:     uint8(e.Terms.Len),
				PR:      e.Terms.PR,
				Sim:     e.Terms.Sim,
			}
		}
		wire.Words[i] = ww
	}
	if err := enc.Encode(&wire); err != nil {
		return fmt.Errorf("index: encode: %w", err)
	}
	return bw.Flush()
}

// Load reads an index written by Encode and re-derives the two access
// views against the supplied graph.
func Load(r io.Reader, g *kg.Graph) (*Index, error) {
	start := time.Now()
	dec := gob.NewDecoder(bufio.NewReader(r))
	var wire indexWire
	if err := dec.Decode(&wire); err != nil {
		return nil, fmt.Errorf("index: decode: %w", err)
	}
	if wire.Version > WireVersion {
		return nil, fmt.Errorf("index: wire-format version %d not supported (this build reads up to %d)", wire.Version, WireVersion)
	}
	if wire.Nodes != g.NumNodes() || wire.Edges != g.NumEdges() {
		return nil, fmt.Errorf("index: built for a graph with %d nodes/%d edges, got %d/%d",
			wire.Nodes, wire.Edges, g.NumNodes(), g.NumEdges())
	}
	if wire.D < 1 {
		return nil, fmt.Errorf("index: invalid height threshold %d", wire.D)
	}
	dict, err := text.FromSnapshot(wire.Dict)
	if err != nil {
		return nil, err
	}
	ix := &Index{
		g:    g,
		d:    wire.D,
		dict: dict,
		pt:   core.TableFromSnapshot(wire.Patterns),
	}
	patRootType := patternRootTypes(ix.pt)
	ix.words = make([]wordIndex, len(wire.Words))
	for i := range wire.Words {
		ww := &wire.Words[i]
		if len(ww.Entries) == 0 {
			continue
		}
		wi := &ix.words[i]
		wi.edgeBuf = ww.EdgeBuf
		wi.entries = make([]Entry, len(ww.Entries))
		for j, e := range ww.Entries {
			if int(e.Pattern) >= ix.pt.Len() || e.Pattern < 0 {
				return nil, fmt.Errorf("index: entry references unknown pattern %d", e.Pattern)
			}
			if int(e.Root) >= g.NumNodes() || e.Root < 0 {
				return nil, fmt.Errorf("index: entry references node %d out of range", e.Root)
			}
			if int(e.EdgeOff)+int(e.EdgeLen) > len(ww.EdgeBuf) {
				return nil, fmt.Errorf("index: entry edge range out of bounds")
			}
			wi.entries[j] = Entry{
				Pattern: e.Pattern,
				Root:    e.Root,
				edgeOff: e.EdgeOff,
				edgeLen: e.EdgeLen,
				edgeEnd: e.EdgeEnd,
				Terms:   core.ScoreTerms{Len: int(e.Len), PR: e.PR, Sim: e.Sim},
			}
		}
		finishWord(wi, patRootType)
		ix.stats.NumEntries += int64(len(wi.entries))
	}
	ix.stats.D = wire.D
	ix.stats.NumPatterns = ix.pt.Len()
	ix.stats.Bytes = ix.sizeBytes()
	ix.stats.BuildTime = time.Since(start) // load time; cheaper than DFS
	return ix, nil
}

// SaveFile writes the index to path.
func (ix *Index) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("index: create %s: %w", path, err)
	}
	defer f.Close()
	if err := ix.Encode(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads an index from path against the given graph.
func LoadFile(path string, g *kg.Graph) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("index: open %s: %w", path, err)
	}
	defer f.Close()
	return Load(f, g)
}
