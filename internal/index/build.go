package index

import (
	"fmt"
	"sort"
	"sync"
	"time"
	"unsafe"

	"kbtable/internal/core"
	"kbtable/internal/kg"
	"kbtable/internal/text"
)

// wordSim is one word occurring in a piece of text together with the
// precomputed Jaccard similarity sim(w, text) of score3.
type wordSim struct {
	Word text.WordID
	Sim  float64
}

// Build runs Algorithm 1: for every root r it enumerates all simple paths
// of at most D nodes by DFS, and files each (word, pattern, root, path)
// into the posting lists. Roots are fanned out across Options.Workers
// goroutines with contiguous root ranges so the merged result is
// deterministic.
func Build(g *kg.Graph, opts Options) (*Index, error) {
	if opts.D < 1 {
		return nil, fmt.Errorf("index: height threshold D must be >= 1, got %d", opts.D)
	}
	start := time.Now()
	pr := resolvePageRank(g, opts)
	if len(pr) != g.NumNodes() {
		return nil, fmt.Errorf("index: PageRank vector has %d entries for %d nodes", len(pr), g.NumNodes())
	}

	ix := &Index{g: g, d: opts.D, dict: text.NewDict(), pt: core.NewPatternTable()}

	// Phase 1 (single-threaded): intern the corpus vocabulary and
	// precompute, per node and per attribute type, the canonical words
	// occurring in their text together with sim(w, text).
	for alias, canon := range opts.Synonyms {
		ix.dict.AddSynonym(alias, canon)
	}
	cw := newCorpusWords(g, ix.dict)
	cw.fillAllNodes()

	// Phase 2 (parallel): DFS per root over contiguous root ranges.
	nWords := ix.dict.Len()
	workers := defaultWorkers(opts.Workers)
	n := g.NumNodes()
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	outs := make([]*builderState, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := n * w / workers
		hi := n * (w + 1) / workers
		st := newBuilderState(g, opts.D, ix.pt, nWords, cw, pr)
		outs[w] = st
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for r := lo; r < hi; r++ {
				if opts.RootFilter != nil && !opts.RootFilter(kg.NodeID(r)) {
					continue
				}
				st.dfsRoot(kg.NodeID(r))
			}
		}(lo, hi)
	}
	wg.Wait()

	// Phase 3: merge worker outputs per word (worker ranges are in root
	// order, so concatenation keeps entries root-ordered), then sort into
	// the two views.
	ix.words = make([]wordIndex, nWords)
	patRootType := patternRootTypes(ix.pt)
	for w := 0; w < nWords; w++ {
		var total, totalEdges int
		for _, st := range outs {
			total += len(st.postings[w].entries)
			totalEdges += len(st.postings[w].edgeBuf)
		}
		if total == 0 {
			continue
		}
		wi := &ix.words[w]
		wi.entries = make([]Entry, 0, total)
		wi.edgeBuf = make([]kg.EdgeID, 0, totalEdges)
		for _, st := range outs {
			p := &st.postings[w]
			base := int32(len(wi.edgeBuf))
			wi.edgeBuf = append(wi.edgeBuf, p.edgeBuf...)
			for _, e := range p.entries {
				e.edgeOff += base
				wi.entries = append(wi.entries, e)
			}
			// Release worker memory early.
			p.entries = nil
			p.edgeBuf = nil
		}
		finishWord(wi, patRootType)
		ix.stats.NumEntries += int64(total)
	}

	ix.stats.D = opts.D
	ix.stats.NumPatterns = ix.pt.Len()
	ix.stats.Bytes = ix.sizeBytes()
	ix.stats.BuildTime = time.Since(start)
	return ix, nil
}

// wordSims canonicalizes the token set of s and attaches sim = 1/|tokens|,
// the Jaccard similarity between any single contained word and s.
func wordSims(d *text.Dict, s string) []wordSim {
	toks := text.TokenSet(s)
	if len(toks) == 0 {
		return nil
	}
	sim := 1.0 / float64(len(toks))
	out := make([]wordSim, 0, len(toks))
	seen := make(map[text.WordID]struct{}, len(toks))
	for _, t := range toks {
		id := d.Canonical(d.Intern(t))
		if _, ok := seen[id]; ok {
			continue
		}
		seen[id] = struct{}{}
		out = append(out, wordSim{Word: id, Sim: sim})
	}
	return out
}

// mergeWordSims unions two wordSim lists keeping the max similarity.
func mergeWordSims(a, b []wordSim) []wordSim {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		out := make([]wordSim, len(b))
		copy(out, b)
		return out
	}
	out := make([]wordSim, len(a), len(a)+len(b))
	copy(out, a)
	for _, ws := range b {
		found := false
		for i := range out {
			if out[i].Word == ws.Word {
				if ws.Sim > out[i].Sim {
					out[i].Sim = ws.Sim
				}
				found = true
				break
			}
		}
		if !found {
			out = append(out, ws)
		}
	}
	return out
}

// corpusWords resolves the canonical words (with sim(w, text)) occurring in
// node, entity-type and attribute-type texts. Type and attribute words are
// computed eagerly (both tables are small); node words are either
// precomputed in bulk (fillAllNodes, used by Build so that DFS workers can
// share the table lock-free) or lazily on first access (used by ApplyDelta,
// whose serial DFS only visits the d-neighborhood of dirty roots — most of
// the corpus never needs tokenizing). Lazy access interns unseen words into
// the dict and is therefore not safe for concurrent use.
type corpusWords struct {
	g    *kg.Graph
	dict *text.Dict

	typeWords [][]wordSim
	attrWords [][]wordSim
	nodeWords [][]wordSim
	nodeDone  []bool // nil once fillAllNodes ran
}

func newCorpusWords(g *kg.Graph, dict *text.Dict) *corpusWords {
	cw := &corpusWords{
		g:         g,
		dict:      dict,
		typeWords: make([][]wordSim, g.NumTypes()),
		attrWords: make([][]wordSim, g.NumAttrs()),
		nodeWords: make([][]wordSim, g.NumNodes()),
		nodeDone:  make([]bool, g.NumNodes()),
	}
	for t := 0; t < g.NumTypes(); t++ {
		if kg.TypeID(t) == kg.LiteralType {
			// Dummy text entities have their type omitted (Section 2.1 /
			// Example 2.1); the reserved type's display name is not
			// searchable text.
			continue
		}
		cw.typeWords[t] = wordSims(dict, g.TypeName(kg.TypeID(t)))
	}
	for a := 0; a < g.NumAttrs(); a++ {
		cw.attrWords[a] = wordSims(dict, g.AttrName(kg.AttrID(a)))
	}
	return cw
}

// fillAllNodes precomputes every node's word list; afterwards node() is
// read-only and safe for concurrent callers.
func (cw *corpusWords) fillAllNodes() {
	for v := 0; v < cw.g.NumNodes(); v++ {
		cw.fillNode(kg.NodeID(v))
	}
	cw.nodeDone = nil
}

func (cw *corpusWords) fillNode(v kg.NodeID) {
	// Words from the entity text and from its type's text; when a word
	// appears in both, keep the higher similarity ("appears in the text
	// description of a node or node type", condition ii).
	own := wordSims(cw.dict, cw.g.Text(v))
	cw.nodeWords[v] = mergeWordSims(own, cw.typeWords[cw.g.Type(v)])
}

// node returns the canonical words of v's text (and its type's text).
func (cw *corpusWords) node(v kg.NodeID) []wordSim {
	if cw.nodeDone != nil && !cw.nodeDone[v] {
		cw.fillNode(v)
		cw.nodeDone[v] = true
	}
	return cw.nodeWords[v]
}

// attr returns the canonical words of an attribute type's text.
func (cw *corpusWords) attr(a kg.AttrID) []wordSim { return cw.attrWords[a] }

// postings is the per-word accumulation buffer of one worker.
type postings struct {
	entries []Entry
	edgeBuf []kg.EdgeID
}

// builderState is the DFS state of one construction worker. It is also the
// splice generator of incremental maintenance: ApplyDelta runs the same DFS
// from dirty roots only.
type builderState struct {
	g     *kg.Graph
	d     int
	pt    *core.PatternTable
	words *corpusWords
	pr    []float64
	// postings is indexed by WordID; emit grows it when the lazy word
	// source interns words mid-DFS (never happens under fillAllNodes).
	postings []postings

	// DFS stacks.
	root   kg.NodeID
	edges  []kg.EdgeID
	types  []kg.TypeID
	attrs  []kg.AttrID
	onPath map[kg.NodeID]bool
}

func newBuilderState(g *kg.Graph, d int, pt *core.PatternTable, nWords int, words *corpusWords, pr []float64) *builderState {
	return &builderState{
		g:        g,
		d:        d,
		pt:       pt,
		words:    words,
		pr:       pr,
		postings: make([]postings, nWords),
		onPath:   make(map[kg.NodeID]bool, 16),
	}
}

// dfsRoot enumerates all simple paths from r with at most d-1 edges.
func (st *builderState) dfsRoot(r kg.NodeID) {
	st.root = r
	st.edges = st.edges[:0]
	st.types = append(st.types[:0], st.g.Type(r))
	st.attrs = st.attrs[:0]
	clear(st.onPath)
	st.onPath[r] = true
	st.visit(r)
}

// visit emits the node entry for the current path ending at v, then emits
// edge entries and recurses for each out-edge while under the depth bound.
func (st *builderState) visit(v kg.NodeID) {
	g := st.g
	depth := len(st.edges) // number of edges on the current path

	if words := st.words.node(v); len(words) > 0 {
		pid := st.pt.Intern(st.snapshotPattern(false))
		for _, ws := range words {
			st.emit(ws, pid, false, v)
		}
	}
	if depth >= st.d-1 {
		return
	}
	first, n := g.OutEdges(v)
	for i := 0; i < n; i++ {
		eid := first + kg.EdgeID(i)
		e := g.Edge(eid)
		if st.onPath[e.Dst] {
			// Simple-path policy: a path revisiting a node cannot be part
			// of a tree-shaped subtree, so neither node nor edge entries
			// are emitted for it.
			continue
		}
		// Edge match: the path ends at this edge's attribute type.
		if words := st.words.attr(e.Attr); len(words) > 0 {
			st.edges = append(st.edges, eid)
			st.attrs = append(st.attrs, e.Attr)
			pid := st.pt.Intern(st.snapshotPattern(true))
			for _, ws := range words {
				st.emit(ws, pid, true, v) // f(w) is the edge; PR uses source v
			}
			st.edges = st.edges[:len(st.edges)-1]
			st.attrs = st.attrs[:len(st.attrs)-1]
		}
		// Extend the node path.
		st.edges = append(st.edges, eid)
		st.attrs = append(st.attrs, e.Attr)
		st.types = append(st.types, g.Type(e.Dst))
		st.onPath[e.Dst] = true
		st.visit(e.Dst)
		st.onPath[e.Dst] = false
		st.types = st.types[:len(st.types)-1]
		st.attrs = st.attrs[:len(st.attrs)-1]
		st.edges = st.edges[:len(st.edges)-1]
	}
}

// snapshotPattern copies the current DFS type/attr stacks into a pattern.
func (st *builderState) snapshotPattern(edgeEnd bool) core.PathPattern {
	types := make([]kg.TypeID, len(st.types))
	copy(types, st.types)
	attrs := make([]kg.AttrID, len(st.attrs))
	copy(attrs, st.attrs)
	return core.PathPattern{Types: types, Attrs: attrs, EdgeEnd: edgeEnd}
}

// emit files one posting. matchNode is the node carrying f(w) for PR
// purposes: the end node for node matches, the edge source for edge matches.
func (st *builderState) emit(ws wordSim, pid core.PatternID, edgeEnd bool, matchNode kg.NodeID) {
	for int(ws.Word) >= len(st.postings) {
		st.postings = append(st.postings, postings{})
	}
	p := &st.postings[ws.Word]
	off := int32(len(p.edgeBuf))
	p.edgeBuf = append(p.edgeBuf, st.edges...)
	p.entries = append(p.entries, Entry{
		Pattern: pid,
		Root:    st.root,
		edgeOff: off,
		edgeLen: uint8(len(st.edges)),
		edgeEnd: edgeEnd,
		Terms: core.ScoreTerms{
			Len: len(st.edges) + 1,
			PR:  st.pr[matchNode],
			Sim: ws.Sim,
		},
	})
}

// patternRootTypes snapshots PatternID -> root type for fast sorting.
func patternRootTypes(pt *core.PatternTable) []kg.TypeID {
	n := pt.Len()
	out := make([]kg.TypeID, n)
	for i := 0; i < n; i++ {
		out[i] = pt.Get(core.PatternID(i)).RootType()
	}
	return out
}

// finishWord sorts one word's postings into the pattern-first order and
// derives both views' group tables.
func finishWord(wi *wordIndex, patRootType []kg.TypeID) {
	// Pattern-first order: (root type, pattern, root); the pre-sort root
	// order within equal keys is preserved by stability, keeping path
	// enumeration deterministic.
	sort.SliceStable(wi.entries, func(i, j int) bool {
		a, b := &wi.entries[i], &wi.entries[j]
		at, bt := patRootType[a.Pattern], patRootType[b.Pattern]
		if at != bt {
			return at < bt
		}
		if a.Pattern != b.Pattern {
			return a.Pattern < b.Pattern
		}
		return a.Root < b.Root
	})

	// Scan out patGroups / pfRuns / typeGroups. The same pass accumulates
	// each group's score-term bounds and largest per-root run — the
	// PatternBounds the streaming executor's pruning consumes.
	n := int32(len(wi.entries))
	for i := int32(0); i < n; {
		j := i
		pat := wi.entries[i].Pattern
		runStart := int32(len(wi.pfRuns))
		e0 := &wi.entries[i]
		b := patBounds{
			minLen: int32(e0.Terms.Len), maxLen: int32(e0.Terms.Len),
			minPR: e0.Terms.PR, maxPR: e0.Terms.PR,
			minSim: e0.Terms.Sim, maxSim: e0.Terms.Sim,
		}
		for j < n && wi.entries[j].Pattern == pat {
			k := j
			root := wi.entries[j].Root
			for k < n && wi.entries[k].Pattern == pat && wi.entries[k].Root == root {
				t := &wi.entries[k].Terms
				if int32(t.Len) < b.minLen {
					b.minLen = int32(t.Len)
				}
				if int32(t.Len) > b.maxLen {
					b.maxLen = int32(t.Len)
				}
				if t.PR < b.minPR {
					b.minPR = t.PR
				}
				if t.PR > b.maxPR {
					b.maxPR = t.PR
				}
				if t.Sim < b.minSim {
					b.minSim = t.Sim
				}
				if t.Sim > b.maxSim {
					b.maxSim = t.Sim
				}
				k++
			}
			if run := k - j; run > b.maxRun {
				b.maxRun = run
			}
			wi.pfRuns = append(wi.pfRuns, rootRun{Root: root, Start: j, End: k})
			j = k
		}
		wi.patGroups = append(wi.patGroups, patGroup{
			Pattern:  pat,
			RootType: patRootType[pat],
			Start:    i,
			End:      j,
			RunStart: runStart,
			RunEnd:   int32(len(wi.pfRuns)),
			bounds:   b,
		})
		i = j
	}
	for i := 0; i < len(wi.patGroups); {
		j := i
		rt := wi.patGroups[i].RootType
		for j < len(wi.patGroups) && wi.patGroups[j].RootType == rt {
			j++
		}
		wi.typeGroups = append(wi.typeGroups, typeGroup{Type: rt, Start: int32(i), End: int32(j)})
		i = j
	}

	// Root-first view: permutation sorted by (root, pattern, position).
	wi.rootOrder = make([]int32, n)
	for i := range wi.rootOrder {
		wi.rootOrder[i] = int32(i)
	}
	sort.SliceStable(wi.rootOrder, func(x, y int) bool {
		a, b := &wi.entries[wi.rootOrder[x]], &wi.entries[wi.rootOrder[y]]
		if a.Root != b.Root {
			return a.Root < b.Root
		}
		return a.Pattern < b.Pattern
	})
	for i := int32(0); i < n; {
		j := i
		root := wi.entries[wi.rootOrder[i]].Root
		runStart := int32(len(wi.rfRuns))
		for j < n && wi.entries[wi.rootOrder[j]].Root == root {
			k := j
			pat := wi.entries[wi.rootOrder[j]].Pattern
			for k < n && wi.entries[wi.rootOrder[k]].Root == root && wi.entries[wi.rootOrder[k]].Pattern == pat {
				k++
			}
			wi.rfRuns = append(wi.rfRuns, patRun{Pattern: pat, Start: j, End: k})
			j = k
		}
		wi.rootGroups = append(wi.rootGroups, rootGroup{
			Root:     root,
			Start:    i,
			End:      j,
			RunStart: runStart,
			RunEnd:   int32(len(wi.rfRuns)),
		})
		wi.roots = append(wi.roots, root)
		i = j
	}
}

// sizeBytes estimates the resident size of both views (Figure 6's "Size").
func (ix *Index) sizeBytes() int64 {
	var total int64
	for i := range ix.words {
		wi := &ix.words[i]
		total += int64(len(wi.entries)) * int64(unsafe.Sizeof(Entry{}))
		total += int64(len(wi.edgeBuf)) * 4
		total += int64(len(wi.patGroups)) * int64(unsafe.Sizeof(patGroup{}))
		total += int64(len(wi.pfRuns)) * int64(unsafe.Sizeof(rootRun{}))
		total += int64(len(wi.typeGroups)) * int64(unsafe.Sizeof(typeGroup{}))
		total += int64(len(wi.rootOrder)) * 4
		total += int64(len(wi.rootGroups)) * int64(unsafe.Sizeof(rootGroup{}))
		total += int64(len(wi.rfRuns)) * int64(unsafe.Sizeof(patRun{}))
		total += int64(len(wi.roots)) * 4
	}
	return total
}
