package index

import (
	"encoding/binary"
	"fmt"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"kbtable/internal/core"
	"kbtable/internal/kg"
	"kbtable/internal/text"
)

// wordSim is one word occurring in a piece of text together with the
// precomputed Jaccard similarity sim(w, text) of score3.
type wordSim struct {
	Word text.WordID
	Sim  float64
}

// flatEntry is the row-oriented construction form of one posting: the DFS
// emits these, finishWord sorts them and transposes into the columnar
// wordIndex layout. flatten reverses the transform for delta splicing and
// for the legacy gob writer.
type flatEntry struct {
	pattern core.PatternID
	root    kg.NodeID
	edgeOff int32
	edgeLen int32
	edgeEnd bool
	terms   core.ScoreTerms
}

// Build runs Algorithm 1: for every root r it enumerates all simple paths
// of at most D nodes by DFS, and files each (word, pattern, root, path)
// into the posting lists. Roots are fanned out across Options.Workers
// goroutines with contiguous root ranges so the merged result is
// deterministic.
func Build(g *kg.Graph, opts Options) (*Index, error) {
	if opts.D < 1 {
		return nil, fmt.Errorf("index: height threshold D must be >= 1, got %d", opts.D)
	}
	start := time.Now()
	pr := resolvePageRank(g, opts)
	if len(pr) != g.NumNodes() {
		return nil, fmt.Errorf("index: PageRank vector has %d entries for %d nodes", len(pr), g.NumNodes())
	}

	ix := &Index{g: g, d: opts.D, dict: text.NewDict(), pt: core.NewPatternTable()}

	// Phase 1 (single-threaded): intern the corpus vocabulary and
	// precompute, per node and per attribute type, the canonical words
	// occurring in their text together with sim(w, text).
	for alias, canon := range opts.Synonyms {
		ix.dict.AddSynonym(alias, canon)
	}
	cw := newCorpusWords(g, ix.dict)
	cw.fillAllNodes()

	// Phase 2 (parallel): DFS per root over contiguous root ranges.
	nWords := ix.dict.Len()
	workers := defaultWorkers(opts.Workers)
	n := g.NumNodes()
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	outs := make([]*builderState, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := n * w / workers
		hi := n * (w + 1) / workers
		st := newBuilderState(g, opts.D, ix.pt, nWords, cw, pr)
		outs[w] = st
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for r := lo; r < hi; r++ {
				if opts.RootFilter != nil && !opts.RootFilter(kg.NodeID(r)) {
					continue
				}
				st.dfsRoot(kg.NodeID(r))
			}
		}(lo, hi)
	}
	wg.Wait()

	// Phase 3 (parallel per word): merge worker outputs (worker ranges are
	// in root order, so concatenation keeps entries root-ordered), then
	// sort and transpose into the two columnar views.
	ix.words = make([]wordIndex, nWords)
	patRootType := patternRootTypes(ix.pt)
	var entries int64
	parallelWords(nWords, workers, func(w int) {
		var total, totalEdges int
		for _, st := range outs {
			if w >= len(st.postings) {
				continue
			}
			total += len(st.postings[w].entries)
			totalEdges += len(st.postings[w].edgeBuf)
		}
		if total == 0 {
			return
		}
		flat := make([]flatEntry, 0, total)
		buf := make([]kg.EdgeID, 0, totalEdges)
		for _, st := range outs {
			if w >= len(st.postings) {
				continue
			}
			p := &st.postings[w]
			base := int32(len(buf))
			buf = append(buf, p.edgeBuf...)
			for _, e := range p.entries {
				e.edgeOff += base
				flat = append(flat, e)
			}
			// Release worker memory early.
			p.entries = nil
			p.edgeBuf = nil
		}
		finishWord(&ix.words[w], flat, buf, patRootType)
		atomicAdd(&entries, int64(total))
	})
	ix.stats.NumEntries = entries

	ix.stats.D = opts.D
	ix.stats.NumPatterns = ix.pt.Len()
	ix.stats.Bytes = ix.sizeBytes()
	ix.stats.BuildTime = time.Since(start)
	return ix, nil
}

// atomicAdd is atomic.AddInt64 under a shorter name.
func atomicAdd(p *int64, v int64) int64 { return atomic.AddInt64(p, v) }

// parallelWords fans f out over word indexes with a bounded worker pool;
// workers <= 1 degrades to a serial loop.
func parallelWords(nWords, workers int, f func(w int)) {
	if workers > nWords {
		workers = nWords
	}
	if workers <= 1 {
		for w := 0; w < nWords; w++ {
			f(w)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				w := int(atomicAdd(&next, 1)) - 1
				if w >= nWords {
					return
				}
				f(w)
			}
		}()
	}
	wg.Wait()
}

// wordSims canonicalizes the token set of s and attaches sim = 1/|tokens|,
// the Jaccard similarity between any single contained word and s.
func wordSims(d *text.Dict, s string) []wordSim {
	toks := text.TokenSet(s)
	if len(toks) == 0 {
		return nil
	}
	sim := 1.0 / float64(len(toks))
	out := make([]wordSim, 0, len(toks))
	seen := make(map[text.WordID]struct{}, len(toks))
	for _, t := range toks {
		id := d.Canonical(d.Intern(t))
		if _, ok := seen[id]; ok {
			continue
		}
		seen[id] = struct{}{}
		out = append(out, wordSim{Word: id, Sim: sim})
	}
	return out
}

// mergeWordSims unions two wordSim lists keeping the max similarity.
func mergeWordSims(a, b []wordSim) []wordSim {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		out := make([]wordSim, len(b))
		copy(out, b)
		return out
	}
	out := make([]wordSim, len(a), len(a)+len(b))
	copy(out, a)
	for _, ws := range b {
		found := false
		for i := range out {
			if out[i].Word == ws.Word {
				if ws.Sim > out[i].Sim {
					out[i].Sim = ws.Sim
				}
				found = true
				break
			}
		}
		if !found {
			out = append(out, ws)
		}
	}
	return out
}

// corpusWords resolves the canonical words (with sim(w, text)) occurring in
// node, entity-type and attribute-type texts. Type and attribute words are
// computed eagerly (both tables are small); node words are either
// precomputed in bulk (fillAllNodes, used by Build so that DFS workers can
// share the table lock-free) or lazily on first access (used by ApplyDelta,
// whose serial DFS only visits the d-neighborhood of dirty roots — most of
// the corpus never needs tokenizing). Lazy access interns unseen words into
// the dict and is therefore not safe for concurrent use.
type corpusWords struct {
	g    *kg.Graph
	dict *text.Dict

	typeWords [][]wordSim
	attrWords [][]wordSim
	nodeWords [][]wordSim
	nodeDone  []bool // nil once fillAllNodes ran
}

func newCorpusWords(g *kg.Graph, dict *text.Dict) *corpusWords {
	cw := &corpusWords{
		g:         g,
		dict:      dict,
		typeWords: make([][]wordSim, g.NumTypes()),
		attrWords: make([][]wordSim, g.NumAttrs()),
		nodeWords: make([][]wordSim, g.NumNodes()),
		nodeDone:  make([]bool, g.NumNodes()),
	}
	for t := 0; t < g.NumTypes(); t++ {
		if kg.TypeID(t) == kg.LiteralType {
			// Dummy text entities have their type omitted (Section 2.1 /
			// Example 2.1); the reserved type's display name is not
			// searchable text.
			continue
		}
		cw.typeWords[t] = wordSims(dict, g.TypeName(kg.TypeID(t)))
	}
	for a := 0; a < g.NumAttrs(); a++ {
		cw.attrWords[a] = wordSims(dict, g.AttrName(kg.AttrID(a)))
	}
	return cw
}

// fillAllNodes precomputes every node's word list; afterwards node() is
// read-only and safe for concurrent callers.
func (cw *corpusWords) fillAllNodes() {
	for v := 0; v < cw.g.NumNodes(); v++ {
		cw.fillNode(kg.NodeID(v))
	}
	cw.nodeDone = nil
}

func (cw *corpusWords) fillNode(v kg.NodeID) {
	// Words from the entity text and from its type's text; when a word
	// appears in both, keep the higher similarity ("appears in the text
	// description of a node or node type", condition ii).
	own := wordSims(cw.dict, cw.g.Text(v))
	cw.nodeWords[v] = mergeWordSims(own, cw.typeWords[cw.g.Type(v)])
}

// node returns the canonical words of v's text (and its type's text).
func (cw *corpusWords) node(v kg.NodeID) []wordSim {
	if cw.nodeDone != nil && !cw.nodeDone[v] {
		cw.fillNode(v)
		cw.nodeDone[v] = true
	}
	return cw.nodeWords[v]
}

// attr returns the canonical words of an attribute type's text.
func (cw *corpusWords) attr(a kg.AttrID) []wordSim { return cw.attrWords[a] }

// postings is the per-word accumulation buffer of one worker.
type postings struct {
	entries []flatEntry
	edgeBuf []kg.EdgeID
}

// builderState is the DFS state of one construction worker. It is also the
// splice generator of incremental maintenance: ApplyDelta runs the same DFS
// from dirty roots only.
type builderState struct {
	g     *kg.Graph
	d     int
	pt    *core.PatternTable
	words *corpusWords
	pr    []float64
	// postings is indexed by WordID; emit grows it when the lazy word
	// source interns words mid-DFS (never happens under fillAllNodes).
	postings []postings

	// DFS stacks.
	root   kg.NodeID
	edges  []kg.EdgeID
	types  []kg.TypeID
	attrs  []kg.AttrID
	onPath map[kg.NodeID]bool
}

func newBuilderState(g *kg.Graph, d int, pt *core.PatternTable, nWords int, words *corpusWords, pr []float64) *builderState {
	return &builderState{
		g:        g,
		d:        d,
		pt:       pt,
		words:    words,
		pr:       pr,
		postings: make([]postings, nWords),
		onPath:   make(map[kg.NodeID]bool, 16),
	}
}

// dfsRoot enumerates all simple paths from r with at most d-1 edges.
func (st *builderState) dfsRoot(r kg.NodeID) {
	st.root = r
	st.edges = st.edges[:0]
	st.types = append(st.types[:0], st.g.Type(r))
	st.attrs = st.attrs[:0]
	clear(st.onPath)
	st.onPath[r] = true
	st.visit(r)
}

// visit emits the node entry for the current path ending at v, then emits
// edge entries and recurses for each out-edge while under the depth bound.
func (st *builderState) visit(v kg.NodeID) {
	g := st.g
	depth := len(st.edges) // number of edges on the current path

	if words := st.words.node(v); len(words) > 0 {
		pid := st.pt.Intern(st.snapshotPattern(false))
		for _, ws := range words {
			st.emit(ws, pid, false, v)
		}
	}
	if depth >= st.d-1 {
		return
	}
	first, n := g.OutEdges(v)
	for i := 0; i < n; i++ {
		eid := first + kg.EdgeID(i)
		e := g.Edge(eid)
		if st.onPath[e.Dst] {
			// Simple-path policy: a path revisiting a node cannot be part
			// of a tree-shaped subtree, so neither node nor edge entries
			// are emitted for it.
			continue
		}
		// Edge match: the path ends at this edge's attribute type.
		if words := st.words.attr(e.Attr); len(words) > 0 {
			st.edges = append(st.edges, eid)
			st.attrs = append(st.attrs, e.Attr)
			pid := st.pt.Intern(st.snapshotPattern(true))
			for _, ws := range words {
				st.emit(ws, pid, true, v) // f(w) is the edge; PR uses source v
			}
			st.edges = st.edges[:len(st.edges)-1]
			st.attrs = st.attrs[:len(st.attrs)-1]
		}
		// Extend the node path.
		st.edges = append(st.edges, eid)
		st.attrs = append(st.attrs, e.Attr)
		st.types = append(st.types, g.Type(e.Dst))
		st.onPath[e.Dst] = true
		st.visit(e.Dst)
		st.onPath[e.Dst] = false
		st.types = st.types[:len(st.types)-1]
		st.attrs = st.attrs[:len(st.attrs)-1]
		st.edges = st.edges[:len(st.edges)-1]
	}
}

// snapshotPattern copies the current DFS type/attr stacks into a pattern.
func (st *builderState) snapshotPattern(edgeEnd bool) core.PathPattern {
	types := make([]kg.TypeID, len(st.types))
	copy(types, st.types)
	attrs := make([]kg.AttrID, len(st.attrs))
	copy(attrs, st.attrs)
	return core.PathPattern{Types: types, Attrs: attrs, EdgeEnd: edgeEnd}
}

// emit files one posting. matchNode is the node carrying f(w) for PR
// purposes: the end node for node matches, the edge source for edge matches.
func (st *builderState) emit(ws wordSim, pid core.PatternID, edgeEnd bool, matchNode kg.NodeID) {
	for int(ws.Word) >= len(st.postings) {
		st.postings = append(st.postings, postings{})
	}
	p := &st.postings[ws.Word]
	off := int32(len(p.edgeBuf))
	p.edgeBuf = append(p.edgeBuf, st.edges...)
	p.entries = append(p.entries, flatEntry{
		pattern: pid,
		root:    st.root,
		edgeOff: off,
		edgeLen: int32(len(st.edges)),
		edgeEnd: edgeEnd,
		terms: core.ScoreTerms{
			Len: len(st.edges) + 1,
			PR:  st.pr[matchNode],
			Sim: ws.Sim,
		},
	})
}

// patternRootTypes snapshots PatternID -> root type for fast sorting.
func patternRootTypes(pt *core.PatternTable) []kg.TypeID {
	n := pt.Len()
	out := make([]kg.TypeID, n)
	for i := 0; i < n; i++ {
		out[i] = pt.Get(core.PatternID(i)).RootType()
	}
	return out
}

// finishWord sorts one word's flat postings into the pattern-first order
// and transposes them into the columnar layout, deriving both views' run
// and group tables. buf backs the flat entries' edge ranges.
func finishWord(wi *wordIndex, flat []flatEntry, buf []kg.EdgeID, patRootType []kg.TypeID) {
	// Pattern-first order: (root type, pattern, root); the pre-sort root
	// order within equal keys is preserved by stability, keeping path
	// enumeration deterministic.
	sort.SliceStable(flat, func(i, j int) bool {
		a, b := &flat[i], &flat[j]
		at, bt := patRootType[a.pattern], patRootType[b.pattern]
		if at != bt {
			return at < bt
		}
		if a.pattern != b.pattern {
			return a.pattern < b.pattern
		}
		return a.root < b.root
	})

	// Transpose into per-entry columns; keep the per-entry pattern/root
	// keys in transient arrays for the run scan and the root-first sort.
	n := len(flat)
	wi.n = int32(n)
	wi.termRef = make([]uint32, n)
	wi.edgeStart = make([]int32, n+1)
	wi.edgeEnds = make([]uint64, (n+63)/64)
	totalEdges := 0
	for i := range flat {
		totalEdges += int(flat[i].edgeLen)
	}
	wi.edgeBuf = make([]kg.EdgeID, 0, totalEdges)
	pats := make([]core.PatternID, n)
	roots := make([]kg.NodeID, n)
	pool := make(map[core.ScoreTerms]uint32)
	for i := range flat {
		fe := &flat[i]
		wi.edgeStart[i] = int32(len(wi.edgeBuf))
		wi.edgeBuf = append(wi.edgeBuf, buf[fe.edgeOff:fe.edgeOff+fe.edgeLen]...)
		if fe.edgeEnd {
			wi.edgeEnds[i>>6] |= 1 << (uint(i) & 63)
		}
		ref, ok := pool[fe.terms]
		if !ok {
			ref = uint32(len(wi.termPool))
			pool[fe.terms] = ref
			wi.termPool = append(wi.termPool, fe.terms)
		}
		wi.termRef[i] = ref
		pats[i] = fe.pattern
		roots[i] = fe.root
	}
	wi.edgeStart[n] = int32(len(wi.edgeBuf))
	wi.termPool = compact(wi.termPool)

	// Scan out the (pattern, root) runs and pattern groups.
	var groupPats []core.PatternID
	var groupRuns []int32 // run count per group
	var runPats []core.PatternID
	var runRoots []kg.NodeID
	for i := 0; i < n; {
		j := i
		pat := pats[i]
		runs := int32(0)
		for j < n && pats[j] == pat {
			k := j
			root := roots[j]
			for k < n && pats[k] == pat && roots[k] == root {
				k++
			}
			wi.runEnd = append(wi.runEnd, int32(k))
			runPats = append(runPats, pat)
			runRoots = append(runRoots, root)
			runs++
			j = k
		}
		groupPats = append(groupPats, pat)
		groupRuns = append(groupRuns, runs)
		i = j
	}
	wi.runEnd = compact(wi.runEnd)

	buildGroupTables(wi, groupPats, groupRuns, runRoots, patRootType)
	buildRootFirst(wi, runPats, runRoots)
}

// buildGroupTables derives the pattern-first group tables from the run
// partition: the delta-varint root arena with its skip table, the per-group
// score-term bounds, and the type groups. Shared by finishWord and the
// wire-v2 decoder.
func buildGroupTables(wi *wordIndex, groupPats []core.PatternID, groupRuns []int32, runRoots []kg.NodeID, patRootType []kg.TypeID) {
	wi.patGroups = make([]patGroup, 0, len(groupPats))
	run := int32(0)
	for gi, pat := range groupPats {
		pg := patGroup{
			Pattern:   pat,
			RootType:  patRootType[pat],
			Start:     wi.runStart(run),
			RunStart:  run,
			RunEnd:    run + groupRuns[gi],
			RootOff:   int32(len(wi.rootBytes)),
			SkipStart: int32(len(wi.skipRoots)),
		}
		pg.End = wi.runEnd[pg.RunEnd-1]
		prev := kg.NodeID(-1)
		b := patBounds{}
		for k := pg.RunStart; k < pg.RunEnd; k++ {
			root := runRoots[k]
			wi.rootBytes = binary.AppendUvarint(wi.rootBytes, uint64(root-prev))
			prev = root
			if (k-pg.RunStart)%rootSkipInterval == 0 {
				wi.skipRoots = append(wi.skipRoots, root)
				wi.skipOffs = append(wi.skipOffs, int32(len(wi.rootBytes)))
				wi.skipRun = append(wi.skipRun, k)
			}
			lo, hi := wi.runStart(k), wi.runEnd[k]
			if rl := hi - lo; rl > b.maxRun {
				b.maxRun = rl
			}
			for i := lo; i < hi; i++ {
				t := &wi.termPool[wi.termRef[i]]
				if i == pg.Start {
					b.minLen, b.maxLen = int32(t.Len), int32(t.Len)
					b.minPR, b.maxPR = t.PR, t.PR
					b.minSim, b.maxSim = t.Sim, t.Sim
					continue
				}
				if int32(t.Len) < b.minLen {
					b.minLen = int32(t.Len)
				}
				if int32(t.Len) > b.maxLen {
					b.maxLen = int32(t.Len)
				}
				if t.PR < b.minPR {
					b.minPR = t.PR
				}
				if t.PR > b.maxPR {
					b.maxPR = t.PR
				}
				if t.Sim < b.minSim {
					b.minSim = t.Sim
				}
				if t.Sim > b.maxSim {
					b.maxSim = t.Sim
				}
			}
		}
		pg.SkipEnd = int32(len(wi.skipRoots))
		pg.bounds = b
		wi.patGroups = append(wi.patGroups, pg)
		run = pg.RunEnd
	}
	wi.rootBytes = compact(wi.rootBytes)
	wi.skipRoots = compact(wi.skipRoots)
	wi.skipOffs = compact(wi.skipOffs)
	wi.skipRun = compact(wi.skipRun)

	for i := 0; i < len(wi.patGroups); {
		j := i
		rt := wi.patGroups[i].RootType
		for j < len(wi.patGroups) && wi.patGroups[j].RootType == rt {
			j++
		}
		wi.typeGroups = append(wi.typeGroups, typeGroup{Type: rt, Start: int32(i), End: int32(j)})
		i = j
	}
}

// buildRootFirst derives the root-first view: the permutation sorted by
// (root, pattern, position) and its per-root / per-(root, pattern) run
// tables. runPats/runRoots are the per-run keys of the pattern-first run
// partition. Because (root, pattern) is unique per run and entries within
// a run already sit in pattern-first position order, an unstable sort of
// the RUNS reproduces the stable per-entry permutation at a fraction of
// the cost of sorting entries (this is the hot half of a v2 snapshot
// load).
func buildRootFirst(wi *wordIndex, runPats []core.PatternID, runRoots []kg.NodeID) {
	nRuns := len(runRoots)
	order := make([]int32, nRuns)
	for i := range order {
		order[i] = int32(i)
	}
	slices.SortFunc(order, func(a, b int32) int {
		if runRoots[a] != runRoots[b] {
			if runRoots[a] < runRoots[b] {
				return -1
			}
			return 1
		}
		if runPats[a] < runPats[b] {
			return -1
		}
		return 1
	})
	wi.rootOrder = make([]int32, wi.n)
	wi.rfPat = make([]core.PatternID, 0, nRuns)
	wi.rfEnd = make([]int32, 0, nRuns)
	pos := int32(0)
	for idx, k := range order {
		if idx == 0 || runRoots[k] != runRoots[order[idx-1]] {
			if idx > 0 {
				wi.rgEnd = append(wi.rgEnd, pos)
				wi.rgRunEnd = append(wi.rgRunEnd, int32(len(wi.rfPat)))
			}
			wi.roots = append(wi.roots, runRoots[k])
		}
		for i := wi.runStart(k); i < wi.runEnd[k]; i++ {
			wi.rootOrder[pos] = i
			pos++
		}
		wi.rfPat = append(wi.rfPat, runPats[k])
		wi.rfEnd = append(wi.rfEnd, pos)
	}
	if nRuns > 0 {
		wi.rgEnd = append(wi.rgEnd, pos)
		wi.rgRunEnd = append(wi.rgRunEnd, int32(len(wi.rfPat)))
	}
	wi.roots = compact(wi.roots)
	wi.rgEnd = compact(wi.rgEnd)
	wi.rgRunEnd = compact(wi.rgRunEnd)
	wi.rfPat = compact(wi.rfPat)
	wi.rfEnd = compact(wi.rfEnd)
}

// flatten transposes the columnar word back into row form for splicing and
// the legacy writer. The returned entries' edge ranges index wi.edgeBuf,
// which is returned unchanged (callers copy when they rewrite edges).
func (wi *wordIndex) flatten() ([]flatEntry, []kg.EdgeID) {
	flat := make([]flatEntry, 0, wi.n)
	var e flatEntry
	for gi := range wi.patGroups {
		pg := &wi.patGroups[gi]
		prev := kg.NodeID(-1)
		off := pg.RootOff
		for k := pg.RunStart; k < pg.RunEnd; k++ {
			prev, off = decodeRootDelta(wi.rootBytes, off, prev)
			for i := wi.runStart(k); i < wi.runEnd[k]; i++ {
				e = flatEntry{
					pattern: pg.Pattern,
					root:    prev,
					edgeOff: wi.edgeStart[i],
					edgeLen: wi.edgeStart[i+1] - wi.edgeStart[i],
					edgeEnd: wi.edgeEndBit(i),
					terms:   wi.termPool[wi.termRef[i]],
				}
				flat = append(flat, e)
			}
		}
	}
	return flat, wi.edgeBuf
}

// compact copies s into an exactly-sized backing array, so append slack
// from construction never lingers in the resident index (and sizeBytes is
// a true measurement).
func compact[T any](s []T) []T {
	if len(s) == cap(s) {
		return s
	}
	out := make([]T, len(s))
	copy(out, s)
	return out
}

// sizeBytes measures the resident size of both views (Figure 6's "Size"):
// the exact sum of the columnar arenas and group tables.
func (ix *Index) sizeBytes() int64 {
	total := int64(len(ix.words)) * int64(unsafe.Sizeof(wordIndex{}))
	for i := range ix.words {
		total += ix.words[i].sizeBytes()
	}
	return total
}

// sizeBytes sums this word's columnar arenas exactly.
func (wi *wordIndex) sizeBytes() int64 {
	var t int64
	t += int64(len(wi.termRef)) * 4
	t += int64(len(wi.edgeStart)) * 4
	t += int64(len(wi.edgeEnds)) * 8
	t += int64(len(wi.edgeBuf)) * 4
	t += int64(len(wi.termPool)) * int64(unsafe.Sizeof(core.ScoreTerms{}))
	t += int64(len(wi.runEnd)) * 4
	t += int64(len(wi.rootBytes))
	t += int64(len(wi.skipRoots)) * 4
	t += int64(len(wi.skipOffs)) * 4
	t += int64(len(wi.skipRun)) * 4
	t += int64(len(wi.patGroups)) * int64(unsafe.Sizeof(patGroup{}))
	t += int64(len(wi.typeGroups)) * int64(unsafe.Sizeof(typeGroup{}))
	t += int64(len(wi.rootOrder)) * 4
	t += int64(len(wi.roots)) * 4
	t += int64(len(wi.rgEnd)) * 4
	t += int64(len(wi.rgRunEnd)) * 4
	t += int64(len(wi.rfPat)) * 4
	t += int64(len(wi.rfEnd)) * 4
	return t
}
