package index

import (
	"bytes"
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"reflect"
	"testing"

	"kbtable/internal/dataset"
	"kbtable/internal/kg"
	"kbtable/internal/text"
)

// updateFixtures regenerates the checked-in wire fixtures:
//
//	go test ./internal/index -run TestWireV1GobFixture -update
var updateFixtures = flag.Bool("update", false, "regenerate testdata fixtures")

// wireCorpora are the round-trip corpora: the paper's Figure 1 plus small
// instances of both synthetic knowledge bases (distinct type/attribute
// schemas, text shapes, and fan-outs).
func wireCorpora() []struct {
	name string
	g    *kg.Graph
} {
	fig1, _ := dataset.Fig1()
	return []struct {
		name string
		g    *kg.Graph
	}{
		{"fig1", fig1},
		{"synthwiki", dataset.SynthWiki(dataset.WikiConfig{Entities: 400, Types: 12, AttrVocab: 16, Vocab: 90, Seed: 7})},
		{"synthimdb", dataset.SynthIMDB(dataset.IMDBConfig{Movies: 120, Seed: 7})},
	}
}

// requireDeepEqualWords asserts the loaded index reproduces the built
// index's columnar postings exactly — every arena, group table, bound,
// and both views — not merely content-equivalent postings.
func requireDeepEqualWords(t *testing.T, label string, built, loaded *Index) {
	t.Helper()
	if len(built.words) != len(loaded.words) {
		t.Fatalf("%s: word count %d vs %d", label, len(built.words), len(loaded.words))
	}
	for w := range built.words {
		if !reflect.DeepEqual(built.words[w], loaded.words[w]) {
			t.Fatalf("%s: word %d (%q) differs after load: n=%d vs n=%d",
				label, w, built.Dict().Word(text.WordID(w)), built.words[w].n, loaded.words[w].n)
		}
	}
	if built.Stats().NumEntries != loaded.Stats().NumEntries {
		t.Fatalf("%s: entries %d vs %d", label, built.Stats().NumEntries, loaded.Stats().NumEntries)
	}
	if built.Stats().NumPatterns != loaded.Stats().NumPatterns {
		t.Fatalf("%s: patterns %d vs %d", label, built.Stats().NumPatterns, loaded.Stats().NumPatterns)
	}
	if built.Stats().Bytes != loaded.Stats().Bytes {
		t.Fatalf("%s: resident bytes %d vs %d", label, built.Stats().Bytes, loaded.Stats().Bytes)
	}
	if built.D() != loaded.D() {
		t.Fatalf("%s: D %d vs %d", label, built.D(), loaded.D())
	}
	if !reflect.DeepEqual(built.Dict().Snapshot(), loaded.Dict().Snapshot()) {
		t.Fatalf("%s: dictionary differs after load", label)
	}
	if !reflect.DeepEqual(built.PatternTable().Snapshot(), loaded.PatternTable().Snapshot()) {
		t.Fatalf("%s: pattern table differs after load", label)
	}
}

// TestWireV2RoundTripShards is the round-trip property test: for every
// corpus and shard width, each shard's index (built under the shard
// engine's RootFilter) must encode to v2 and decode back deep-equal, and
// a re-encode of the loaded index must be byte-identical (the format is
// deterministic).
func TestWireV2RoundTripShards(t *testing.T) {
	for _, c := range wireCorpora() {
		for _, shards := range []int{1, 2, 3} {
			for s := 0; s < shards; s++ {
				label := fmt.Sprintf("%s/shards=%d/shard=%d", c.name, shards, s)
				opts := Options{D: 3, UniformPR: true, Workers: 2}
				if shards > 1 {
					s := s
					opts.RootFilter = func(r kg.NodeID) bool { return int(r)%shards == s }
				}
				ix, err := Build(c.g, opts)
				if err != nil {
					t.Fatalf("%s: build: %v", label, err)
				}
				var buf bytes.Buffer
				if err := ix.Encode(&buf); err != nil {
					t.Fatalf("%s: encode: %v", label, err)
				}
				wire := append([]byte(nil), buf.Bytes()...)
				if v, err := SniffWireVersion(bytes.NewReader(wire)); err != nil || v != WireVersion {
					t.Fatalf("%s: sniffed version %d (%v), want %d", label, v, err, WireVersion)
				}
				loaded, err := Load(bytes.NewReader(wire), c.g)
				if err != nil {
					t.Fatalf("%s: load: %v", label, err)
				}
				requireDeepEqualWords(t, label, ix, loaded)
				diffCanonical(t, label, canonical(loaded), canonical(ix))
				var buf2 bytes.Buffer
				if err := loaded.Encode(&buf2); err != nil {
					t.Fatalf("%s: re-encode: %v", label, err)
				}
				if !bytes.Equal(wire, buf2.Bytes()) {
					t.Fatalf("%s: re-encoding the loaded index changed the bytes (%d vs %d)", label, len(wire), buf2.Len())
				}
			}
		}
	}
}

// wireFrame locates one section frame inside an encoded v2 stream.
type wireFrame struct {
	id           byte
	start        int // offset of the id byte
	payloadStart int
	payloadLen   int
}

// parseWireFrames walks the container structure (magic + frames) without
// decoding payloads; the corruption matrix uses the offsets to damage
// each section precisely.
func parseWireFrames(t *testing.T, data []byte) []wireFrame {
	t.Helper()
	if string(data[:len(wireMagic)]) != wireMagic {
		t.Fatalf("stream does not start with %q", wireMagic)
	}
	var frames []wireFrame
	off := len(wireMagic)
	for off < len(data) {
		f := wireFrame{id: data[off], start: off}
		n, w := binary.Uvarint(data[off+1:])
		if w <= 0 {
			t.Fatalf("bad frame length at offset %d", off)
		}
		f.payloadStart = off + 1 + w
		f.payloadLen = int(n)
		frames = append(frames, f)
		off = f.payloadStart + f.payloadLen + 4 // payload + CRC
	}
	if off != len(data) {
		t.Fatalf("frame walk ended at %d of %d bytes", off, len(data))
	}
	return frames
}

// TestWireV2CorruptionMatrix damages every section of a v2 stream in
// every way — truncation mid-payload, a flipped payload byte, a flipped
// checksum byte — and requires Load to fail cleanly each time.
func TestWireV2CorruptionMatrix(t *testing.T) {
	g, _ := dataset.Fig1()
	ix, err := Build(g, Options{D: 3, UniformPR: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()
	frames := parseWireFrames(t, wire)
	if len(frames) < 4 {
		t.Fatalf("expected header/dict/patterns/word/end frames, got %d", len(frames))
	}

	mustFail := func(label string, data []byte) {
		t.Helper()
		if _, err := Load(bytes.NewReader(data), g); err == nil {
			t.Errorf("%s: corrupted snapshot loaded without error", label)
		}
	}

	mustFail("truncated magic", wire[:2])
	flipped := append([]byte(nil), wire...)
	flipped[0] ^= 0xFF // no longer the magic: must not be misread as gob
	mustFail("flipped magic", flipped)

	for _, f := range frames {
		label := fmt.Sprintf("section %d", f.id)

		trunc := append([]byte(nil), wire[:f.payloadStart+f.payloadLen/2]...)
		mustFail(label+": truncated payload", trunc)

		if f.payloadLen > 0 {
			flip := append([]byte(nil), wire...)
			flip[f.payloadStart+f.payloadLen/3] ^= 0x40
			mustFail(label+": flipped payload byte", flip)
		}

		crcFlip := append([]byte(nil), wire...)
		crcFlip[f.payloadStart+f.payloadLen] ^= 0x01
		mustFail(label+": flipped checksum byte", crcFlip)
	}
}

// v1FixturePath is a checked-in legacy gob snapshot (written by
// EncodeLegacyGob, i.e. exactly what a pre-v2 build produced). The
// backward-compat gate below must keep loading it forever.
const v1FixturePath = "testdata/index-v1.gob"

func v1FixtureIndex(t *testing.T) (*Index, *kg.Graph) {
	t.Helper()
	g, _ := dataset.Fig1()
	ix, err := Build(g, Options{D: 3, UniformPR: true, Synonyms: map[string]string{"corp": "company"}})
	if err != nil {
		t.Fatal(err)
	}
	return ix, g
}

// TestWireV1GobFixture proves old gob snapshots still load, and load to
// the same in-memory index a fresh build (or a v2 round trip) produces:
// deep-equal columnar postings and a byte-identical v2 re-encoding.
func TestWireV1GobFixture(t *testing.T) {
	ix, g := v1FixtureIndex(t)
	if *updateFixtures {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		f, err := os.Create(v1FixturePath)
		if err != nil {
			t.Fatal(err)
		}
		if err := ix.EncodeLegacyGob(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(v1FixturePath)
	if err != nil {
		t.Fatalf("read v1 fixture: %v (regenerate with `go test ./internal/index -run TestWireV1GobFixture -update`)", err)
	}
	if v, err := SniffWireVersion(bytes.NewReader(data)); err != nil || v != 1 {
		t.Fatalf("fixture sniffs as version %d (%v), want 1", v, err)
	}
	loaded, err := Load(bytes.NewReader(data), g)
	if err != nil {
		t.Fatalf("this build can no longer load a v1 gob snapshot: %v", err)
	}
	requireDeepEqualWords(t, "v1-fixture", ix, loaded)
	diffCanonical(t, "v1-fixture", canonical(loaded), canonical(ix))

	var fresh, reenc bytes.Buffer
	if err := ix.Encode(&fresh); err != nil {
		t.Fatal(err)
	}
	if err := loaded.Encode(&reenc); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fresh.Bytes(), reenc.Bytes()) {
		t.Fatalf("v2 encoding of the v1-loaded index differs from the fresh build's (%d vs %d bytes)",
			fresh.Len(), reenc.Len())
	}
}

// TestWireV2SmallerThanGob pins the headline footprint claim at test
// scale: the v2 container must be at least 30%% smaller than the legacy
// gob container for the same index.
func TestWireV2SmallerThanGob(t *testing.T) {
	g := dataset.SynthWiki(dataset.WikiConfig{Entities: 600, Types: 15, AttrVocab: 18, Vocab: 120, Seed: 3})
	ix, err := Build(g, Options{D: 3, UniformPR: true})
	if err != nil {
		t.Fatal(err)
	}
	var v2, gob bytes.Buffer
	if err := ix.Encode(&v2); err != nil {
		t.Fatal(err)
	}
	if err := ix.EncodeLegacyGob(&gob); err != nil {
		t.Fatal(err)
	}
	if v2.Len() >= gob.Len()*7/10 {
		t.Fatalf("v2 snapshot %d bytes is not >=30%% smaller than gob %d bytes", v2.Len(), gob.Len())
	}
}
