// Incremental index maintenance. ApplyDelta keeps the two path-pattern
// views in sync with a kg.Delta without re-running Algorithm 1 over the
// whole graph: only roots whose (d-1)-neighborhood intersects the change
// (kg.AffectedRoots) are re-enumerated, and their postings are spliced
// into the untouched remainder. The result is a NEW *Index over the new
// snapshot — the receiver stays valid, so readers on the old epoch are
// never disturbed (copy-on-write down to the posting-list level).
//
// Why splicing reproduces a full rebuild exactly: Build's per-word entry
// order is the stable sort of (root type, pattern, root) over entries
// generated in ascending-root DFS order. Surviving entries of untouched
// roots keep that relative order; freshly enumerated dirty-root entries
// are generated the same way; a root is never both (a root either is in
// the dirty set or not), so re-running the stable sort over the
// concatenation yields exactly the order a from-scratch Build produces —
// modulo PatternID numbering, which search never depends on (ranking
// tie-breaks use content keys, see core.TreePattern.ContentKey).
package index

import (
	"fmt"
	"sort"
	"time"

	"kbtable/internal/core"
	"kbtable/internal/kg"
	"kbtable/internal/text"
)

// DeltaStats reports the cost and reach of one incremental maintenance
// pass.
type DeltaStats struct {
	// DirtyRoots is how many roots were re-enumerated (the d-neighborhood
	// of the change); a full rebuild would have enumerated every node.
	DirtyRoots int
	// EntriesRemoved / EntriesAdded count spliced postings.
	EntriesRemoved int64
	EntriesAdded   int64
	// WordsTouched is the number of posting lists that changed.
	WordsTouched int
	// TouchedWords lists the canonical surface forms of the touched
	// posting lists, sorted; servers use it to invalidate exactly the
	// cached queries whose answers could have changed.
	TouchedWords []string
	// ScoresRefreshed reports that the PageRank term of surviving entries
	// was rewritten (PageRank is a global property, so a structural change
	// anywhere shifts scores everywhere). When set, TouchedWords no longer
	// bounds the set of queries whose answers moved — caches must drop
	// everything. Always false under UniformPR, and false for pure text
	// edits (they cannot move PageRank).
	ScoresRefreshed bool
	// Elapsed is the wall-clock maintenance time.
	Elapsed time.Duration
}

// ApplyDelta derives the index of ch.New from the index of ch.Old. opts
// must describe how the receiver was built: D (0 means "same"), the
// PageRank mode, and Workers. Synonyms are already baked into the cloned
// dictionary and are ignored here.
//
// Scoring terms stay exact: with UniformPR every node scores 1 and nothing
// needs refreshing; otherwise PageRank is recomputed on the new snapshot
// (it is a global property, so edits anywhere shift it everywhere) and the
// PR term of every surviving entry is rewritten — the term pool and the
// per-group PR bounds are rebuilt in the same pass, so PatternBounds stays
// a sound envelope for the streaming executor's pruning.
func (ix *Index) ApplyDelta(ch *kg.Changed, opts Options) (*Index, DeltaStats, error) {
	start := time.Now()
	var ds DeltaStats
	if ch == nil || ch.Old == nil || ch.New == nil {
		return nil, ds, fmt.Errorf("index: nil change")
	}
	if ch.Old != ix.g {
		return nil, ds, fmt.Errorf("index: change was computed against a different graph snapshot")
	}
	if opts.D == 0 {
		opts.D = ix.d
	}
	if opts.D != ix.d {
		return nil, ds, fmt.Errorf("index: built with D=%d, delta requests D=%d", ix.d, opts.D)
	}
	newG := ch.New
	pr := resolvePageRank(newG, opts)
	if len(pr) != newG.NumNodes() {
		return nil, ds, fmt.Errorf("index: PageRank vector has %d entries for %d nodes", len(pr), newG.NumNodes())
	}
	refreshPR := !opts.UniformPR || opts.PageRank != nil
	// Pure text edits keep the PR vector bit-identical (PageRank only sees
	// structure), so refreshing would rewrite every term with its old
	// value; skip it and keep invalidation word-precise.
	structural := ch.AddedNodes > 0 || ch.RemovedNodes > 0 || ch.AddedEdges > 0 || ch.RemovedEdges > 0
	if !structural {
		refreshPR = false
	}
	ds.ScoresRefreshed = refreshPR

	// Clone the dictionary and pattern table: the new index interns new
	// words/patterns without perturbing readers of the old epoch.
	dict, err := text.FromSnapshot(ix.dict.Snapshot())
	if err != nil {
		return nil, ds, err
	}
	pt := core.TableFromSnapshot(ix.pt.Snapshot())

	// Dirty roots: every node that could reach a touched element within
	// d-1 edges, in the old or the new snapshot. A root-filtered index
	// (Options.RootFilter) only ever held postings for accepted roots, so
	// only accepted dirty roots are cut out and re-enumerated; the rest of
	// the dirty set belongs to sibling shards.
	dirty := opts.DirtyRoots
	if dirty == nil {
		dirty = kg.AffectedRoots(ch, ix.d-1)
	}
	if opts.RootFilter != nil {
		owned := make([]kg.NodeID, 0, len(dirty))
		for _, r := range dirty {
			if opts.RootFilter(r) {
				owned = append(owned, r)
			}
		}
		dirty = owned
	}
	ds.DirtyRoots = len(dirty)
	dirtySet := make([]bool, newG.NumNodes())
	for _, r := range dirty {
		dirtySet[r] = true
	}

	// Re-run the bounded-height DFS from dirty roots only. The pass is
	// serial: the lazy word source interns corpus words on first sight,
	// and keeping that deterministic (ascending root order) guarantees the
	// same WordIDs for the same update on every replica. Dirty sets are
	// small by construction; when an update devastates the whole graph a
	// full Build is the right tool anyway.
	cw := newCorpusWords(newG, dict)
	st := newBuilderState(newG, ix.d, pt, dict.Len(), cw, pr)
	for _, r := range dirty {
		st.dfsRoot(r)
	}

	nWords := dict.Len()
	identityEdges := ch.EdgeMap == nil
	patRootType := patternRootTypes(pt)
	words := make([]wordIndex, nWords)
	for w := 0; w < nWords; w++ {
		var old *wordIndex
		if w < len(ix.words) && ix.words[w].n > 0 {
			old = &ix.words[w]
		}
		var fresh *postings
		if w < len(st.postings) && len(st.postings[w].entries) > 0 {
			fresh = &st.postings[w]
		}

		// Count the old postings rooted at dirty roots off the root-first
		// group table — no per-entry scan needed.
		dirtyOld := 0
		if old != nil {
			for gi, r := range old.roots {
				if dirtySet[r] {
					dirtyOld += int(old.rgEnd[gi] - old.rgStart(gi))
				}
			}
		}

		switch {
		case old == nil && fresh == nil:
			continue
		case fresh == nil && dirtyOld == 0:
			// Untouched posting list: carry it over. The edge arena may
			// still need a mechanical rewrite (edge IDs shifted) and the
			// term pool a PageRank refresh; the per-entry columns and run
			// tables are positional and shared with the old index either
			// way.
			words[w] = *old
			if !identityEdges {
				words[w].edgeBuf = remapEdges(old.edgeBuf, ch.EdgeMap)
			}
			if refreshPR {
				refreshWordPR(newG, &words[w], pr)
			}
		default:
			// Spliced posting list: surviving entries (dirty roots cut
			// out) + freshly enumerated ones, then re-derive both views
			// for this word only.
			wi := &words[w]
			surv := 0
			if old != nil {
				surv = old.numEntries() - dirtyOld
			}
			frn, fre := 0, 0
			if fresh != nil {
				frn, fre = len(fresh.entries), len(fresh.edgeBuf)
			}
			flat := make([]flatEntry, 0, surv+frn)
			buf := make([]kg.EdgeID, 0, fre+surv*2)
			if old != nil {
				oldFlat, oldBuf := old.flatten()
				for _, e := range oldFlat {
					if dirtySet[e.root] {
						continue
					}
					off := int32(len(buf))
					for _, eid := range oldBuf[e.edgeOff : e.edgeOff+e.edgeLen] {
						buf = append(buf, mapEdge(eid, ch.EdgeMap))
					}
					e.edgeOff = off
					flat = append(flat, e)
				}
			}
			if fresh != nil {
				base := int32(len(buf))
				buf = append(buf, fresh.edgeBuf...)
				for _, e := range fresh.entries {
					e.edgeOff += base
					flat = append(flat, e)
				}
			}
			if refreshPR {
				refreshFlatPR(newG, flat, buf, pr)
			}
			if len(flat) > 0 {
				finishWord(wi, flat, buf, patRootType)
			}
			// A word that vanished from the corpus leaves an empty slot
			// (lookups treat it as no postings).
			ds.EntriesRemoved += int64(dirtyOld)
			ds.EntriesAdded += int64(frn)
			ds.WordsTouched++
			ds.TouchedWords = append(ds.TouchedWords, dict.Word(text.WordID(w)))
		}
	}
	sort.Strings(ds.TouchedWords)

	nix := &Index{g: newG, d: ix.d, dict: dict, pt: pt, words: words}
	for w := range words {
		nix.stats.NumEntries += int64(words[w].numEntries())
	}
	nix.stats.D = ix.d
	nix.stats.NumPatterns = pt.Len()
	nix.stats.Bytes = nix.sizeBytes()
	nix.stats.BuildTime = time.Since(start)
	ds.Elapsed = nix.stats.BuildTime
	return nix, ds, nil
}

// Rebind returns an index identical to ix but reading node texts, types
// and edges from g — the new snapshot of a delta that did not touch any of
// ix's postings. It is the untouched-shard fast path of a sharded engine:
// valid only when the delta had no dirty roots accepted by ix's
// RootFilter, an identity edge map (ch.EdgeMap == nil), and no PageRank
// refresh (DeltaStats.ScoresRefreshed false on the shards that did
// splice). All posting storage is shared with the receiver; both indexes
// stay valid.
func (ix *Index) Rebind(g *kg.Graph) *Index {
	nix := *ix
	nix.g = g
	return &nix
}

// mapEdge translates an old EdgeID through the delta's edge map.
func mapEdge(e kg.EdgeID, edgeMap []kg.EdgeID) kg.EdgeID {
	if edgeMap == nil {
		return e
	}
	return edgeMap[e]
}

// remapEdges translates a whole edge buffer (identity maps share it).
func remapEdges(buf []kg.EdgeID, edgeMap []kg.EdgeID) []kg.EdgeID {
	if edgeMap == nil {
		return buf
	}
	out := make([]kg.EdgeID, len(buf))
	for i, e := range buf {
		out[i] = edgeMap[e]
	}
	return out
}

// matchNodeOf recovers the node carrying f(w) from a path: the end node
// for node matches, the matched edge's source for edge matches, the root
// for zero-edge paths.
func matchNodeOf(g *kg.Graph, root kg.NodeID, edges []kg.EdgeID, edgeEnd bool) kg.NodeID {
	if len(edges) == 0 {
		return root
	}
	last := g.Edge(edges[len(edges)-1])
	if edgeEnd {
		return last.Src
	}
	return last.Dst
}

// refreshWordPR rewrites a carried-over word's PageRank terms against the
// new snapshot's PR vector, without disturbing the shared positional
// columns: the term pool and term references are rebuilt (copy-on-write),
// and each pattern group's PR bounds are recomputed in the same pass so
// PatternBounds never under-approximates the refreshed scores. wi must be
// a shallow copy of the old word; its edgeBuf must already be remapped.
func refreshWordPR(g *kg.Graph, wi *wordIndex, pr []float64) {
	n := int(wi.n)
	newRef := make([]uint32, n)
	var newPool []core.ScoreTerms
	pool := make(map[core.ScoreTerms]uint32)
	groups := make([]patGroup, len(wi.patGroups))
	copy(groups, wi.patGroups)
	for gi := range groups {
		pg := &groups[gi]
		prev := kg.NodeID(-1)
		off := pg.RootOff
		first := true
		var minPR, maxPR float64
		for k := pg.RunStart; k < pg.RunEnd; k++ {
			prev, off = decodeRootDelta(wi.rootBytes, off, prev)
			for i := wi.runStart(k); i < wi.runEnd[k]; i++ {
				t := wi.termPool[wi.termRef[i]]
				lo, hi := wi.edgeStart[i], wi.edgeStart[i+1]
				t.PR = pr[matchNodeOf(g, prev, wi.edgeBuf[lo:hi], wi.edgeEndBit(i))]
				ref, ok := pool[t]
				if !ok {
					ref = uint32(len(newPool))
					pool[t] = ref
					newPool = append(newPool, t)
				}
				newRef[i] = ref
				if first || t.PR < minPR {
					minPR = t.PR
				}
				if first || t.PR > maxPR {
					maxPR = t.PR
				}
				first = false
			}
		}
		pg.bounds.minPR, pg.bounds.maxPR = minPR, maxPR
	}
	wi.termRef = newRef
	wi.termPool = compact(newPool)
	wi.patGroups = groups
}

// refreshFlatPR rewrites every flat entry's PageRank term against the new
// snapshot's PR vector before the splice re-derives the views.
func refreshFlatPR(g *kg.Graph, flat []flatEntry, buf []kg.EdgeID, pr []float64) {
	for i := range flat {
		e := &flat[i]
		edges := buf[e.edgeOff : e.edgeOff+e.edgeLen]
		e.terms.PR = pr[matchNodeOf(g, e.root, edges, e.edgeEnd)]
	}
}
