// Wire format version 2: a binary columnar container replacing the legacy
// gob stream. The file is a magic string followed by length-prefixed,
// CRC-32C-framed sections:
//
//	"KBX2"
//	frame := [section id: 1 byte][payload length: uvarint][payload][CRC-32C(payload): 4 bytes LE]
//	sections := header, dict, patterns, word*, end
//
// Every posting block is one self-contained frame per non-empty word:
// group patterns, delta-varint run roots, run lengths, per-entry edge
// counts, zigzag-delta edge IDs, the edge-end bitset, the deduplicated
// score-term pool, and per-entry pool references. Blocks are encoded and
// decoded with per-word parallelism; the group/run tables and the
// root-first permutation are re-derived on load through the same
// buildGroupTables/buildRootFirst paths construction uses, so a loaded
// index is structurally identical to a freshly built one.
package index

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"
	"time"

	"kbtable/internal/core"
	"kbtable/internal/kg"
	"kbtable/internal/text"
)

// wireMagic identifies a v2 index stream; gob streams can never start
// with these bytes.
const wireMagic = "KBX2"

// Section identifiers of the v2 container.
const (
	secHeader byte = 1
	secDict   byte = 2
	secPats   byte = 3
	secWord   byte = 4
	secEnd    byte = 5
)

// crcTable is the Castagnoli polynomial (CRC-32C), hardware-accelerated on
// amd64/arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// writeFrame emits one section frame.
func writeFrame(bw *bufio.Writer, id byte, payload []byte) error {
	if err := bw.WriteByte(id); err != nil {
		return err
	}
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(payload)))
	if _, err := bw.Write(lenBuf[:n]); err != nil {
		return err
	}
	if _, err := bw.Write(payload); err != nil {
		return err
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc32.Checksum(payload, crcTable))
	_, err := bw.Write(crcBuf[:])
	return err
}

// readFrame reads and CRC-verifies one section frame.
func readFrame(br *bufio.Reader) (byte, []byte, error) {
	id, err := br.ReadByte()
	if err != nil {
		return 0, nil, fmt.Errorf("index: truncated stream: %w", err)
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, nil, fmt.Errorf("index: section %d: bad length: %w", id, err)
	}
	if n > 1<<32 {
		return 0, nil, fmt.Errorf("index: section %d: implausible length %d", id, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		return 0, nil, fmt.Errorf("index: section %d: truncated payload: %w", id, err)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(br, crcBuf[:]); err != nil {
		return 0, nil, fmt.Errorf("index: section %d: truncated checksum: %w", id, err)
	}
	if got, want := crc32.Checksum(payload, crcTable), binary.LittleEndian.Uint32(crcBuf[:]); got != want {
		return 0, nil, fmt.Errorf("index: section %d: checksum mismatch (corrupt snapshot)", id)
	}
	return id, payload, nil
}

// wreader is a sticky-error cursor over one frame payload.
type wreader struct {
	b   []byte
	off int
	err error
}

func (r *wreader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("index: "+format, args...)
	}
}

func (r *wreader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("truncated varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

// count reads a uvarint bounded by max (guards allocations against
// corrupt or adversarial lengths).
func (r *wreader) count(max int, what string) int {
	v := r.uvarint()
	if r.err == nil && v > uint64(max) {
		r.fail("implausible %s count %d", what, v)
	}
	return int(v)
}

func (r *wreader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail("truncated varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *wreader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.b) {
		r.fail("truncated word at offset %d", r.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *wreader) float() float64 { return math.Float64frombits(r.u64()) }

func (r *wreader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) {
		r.fail("truncated byte run at offset %d", r.off)
		return nil
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b
}

// done returns the sticky error, or an error if the payload has trailing
// garbage.
func (r *wreader) done(what string) error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("index: %s: %d trailing bytes", what, len(r.b)-r.off)
	}
	return nil
}

// encodeV2 writes the v2 container. Word blocks are built concurrently
// and written in word order, so the output is deterministic.
func (ix *Index) encodeV2(w io.Writer) error {
	blocks := make([][]byte, len(ix.words))
	parallelWords(len(ix.words), defaultWorkers(0), func(i int) {
		wi := &ix.words[i]
		if wi.n == 0 {
			return
		}
		blocks[i] = encodeWordBlock(i, wi)
	})

	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(wireMagic); err != nil {
		return fmt.Errorf("index: encode: %w", err)
	}
	var hdr []byte
	hdr = binary.AppendUvarint(hdr, uint64(WireVersion))
	hdr = binary.AppendUvarint(hdr, uint64(ix.d))
	hdr = binary.AppendUvarint(hdr, uint64(ix.g.NumNodes()))
	hdr = binary.AppendUvarint(hdr, uint64(ix.g.NumEdges()))
	hdr = binary.AppendUvarint(hdr, uint64(len(ix.words)))
	hdr = binary.AppendUvarint(hdr, uint64(ix.pt.Len()))
	if err := writeFrame(bw, secHeader, hdr); err != nil {
		return fmt.Errorf("index: encode: %w", err)
	}
	if err := writeFrame(bw, secDict, encodeDict(ix.dict.Snapshot())); err != nil {
		return fmt.Errorf("index: encode: %w", err)
	}
	if err := writeFrame(bw, secPats, encodePatterns(ix.pt.Snapshot())); err != nil {
		return fmt.Errorf("index: encode: %w", err)
	}
	for _, b := range blocks {
		if b == nil {
			continue
		}
		if err := writeFrame(bw, secWord, b); err != nil {
			return fmt.Errorf("index: encode: %w", err)
		}
	}
	if err := writeFrame(bw, secEnd, nil); err != nil {
		return fmt.Errorf("index: encode: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("index: encode: %w", err)
	}
	return nil
}

// encodeDict serializes the dictionary snapshot (synonyms sorted by alias
// for determinism).
func encodeDict(s text.Snapshot) []byte {
	var b []byte
	b = binary.AppendUvarint(b, uint64(len(s.Words)))
	for _, w := range s.Words {
		b = binary.AppendUvarint(b, uint64(len(w)))
		b = append(b, w...)
	}
	for _, st := range s.StemOf {
		b = binary.AppendUvarint(b, uint64(st))
	}
	aliases := make([]text.WordID, 0, len(s.Synonyms))
	for k := range s.Synonyms {
		aliases = append(aliases, k)
	}
	sort.Slice(aliases, func(i, j int) bool { return aliases[i] < aliases[j] })
	b = binary.AppendUvarint(b, uint64(len(aliases)))
	for _, k := range aliases {
		b = binary.AppendUvarint(b, uint64(k))
		b = binary.AppendUvarint(b, uint64(s.Synonyms[k]))
	}
	return b
}

func decodeDict(payload []byte) (*text.Dict, error) {
	r := &wreader{b: payload}
	n := r.count(1<<28, "dict word")
	s := text.Snapshot{Words: make([]string, 0, max(n, 0)), Synonyms: map[text.WordID]text.WordID{}}
	for i := 0; i < n && r.err == nil; i++ {
		l := r.count(1<<20, "word length")
		s.Words = append(s.Words, string(r.bytes(l)))
	}
	s.StemOf = make([]text.WordID, 0, max(n, 0))
	for i := 0; i < n && r.err == nil; i++ {
		s.StemOf = append(s.StemOf, text.WordID(r.uvarint()))
	}
	syn := r.count(n, "synonym")
	for i := 0; i < syn && r.err == nil; i++ {
		k := text.WordID(r.uvarint())
		v := text.WordID(r.uvarint())
		s.Synonyms[k] = v
	}
	if err := r.done("dict section"); err != nil {
		return nil, err
	}
	return text.FromSnapshot(s) // validates stem/synonym ranges
}

// encodePatterns serializes the interned pattern table.
func encodePatterns(pats []core.PathPattern) []byte {
	var b []byte
	b = binary.AppendUvarint(b, uint64(len(pats)))
	for _, p := range pats {
		b = binary.AppendUvarint(b, uint64(len(p.Types)))
		if p.EdgeEnd {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		for _, t := range p.Types {
			b = binary.AppendUvarint(b, uint64(t))
		}
		for _, a := range p.Attrs {
			b = binary.AppendUvarint(b, uint64(a))
		}
	}
	return b
}

func decodePatterns(payload []byte, g *kg.Graph, want int) ([]core.PathPattern, error) {
	r := &wreader{b: payload}
	n := r.count(1<<26, "pattern")
	if r.err == nil && n != want {
		return nil, fmt.Errorf("index: pattern section has %d patterns, header says %d", n, want)
	}
	pats := make([]core.PathPattern, 0, max(n, 0))
	for i := 0; i < n && r.err == nil; i++ {
		nt := r.count(1<<16, "pattern type")
		if r.err == nil && nt < 1 {
			return nil, fmt.Errorf("index: pattern %d has no types", i)
		}
		var edgeEnd bool
		switch eb := r.bytes(1); {
		case r.err != nil:
		case eb[0] == 1:
			edgeEnd = true
		case eb[0] != 0:
			return nil, fmt.Errorf("index: pattern %d has invalid edge-end flag %d", i, eb[0])
		}
		p := core.PathPattern{Types: make([]kg.TypeID, nt), EdgeEnd: edgeEnd}
		for j := range p.Types {
			t := r.uvarint()
			if r.err == nil && t >= uint64(g.NumTypes()) {
				return nil, fmt.Errorf("index: pattern %d references type %d out of range", i, t)
			}
			p.Types[j] = kg.TypeID(t)
		}
		na := nt - 1
		if edgeEnd {
			na = nt
		}
		p.Attrs = make([]kg.AttrID, na)
		for j := range p.Attrs {
			a := r.uvarint()
			if r.err == nil && a >= uint64(g.NumAttrs()) {
				return nil, fmt.Errorf("index: pattern %d references attribute %d out of range", i, a)
			}
			p.Attrs[j] = kg.AttrID(a)
		}
		pats = append(pats, p)
	}
	if err := r.done("pattern section"); err != nil {
		return nil, err
	}
	return pats, nil
}

// encodeWordBlock serializes one word's postings straight from the
// columnar layout.
func encodeWordBlock(w int, wi *wordIndex) []byte {
	n := int(wi.n)
	b := make([]byte, 0, len(wi.rootBytes)+n*4+len(wi.edgeBuf)*2+len(wi.termPool)*17)
	b = binary.AppendUvarint(b, uint64(w))
	b = binary.AppendUvarint(b, uint64(n))
	b = binary.AppendUvarint(b, uint64(len(wi.patGroups)))
	for gi := range wi.patGroups {
		pg := &wi.patGroups[gi]
		b = binary.AppendUvarint(b, uint64(pg.Pattern))
		b = binary.AppendUvarint(b, uint64(pg.RunEnd-pg.RunStart))
	}
	// Run roots: the resident arena IS the wire encoding (delta uvarints
	// per group), so it is written verbatim.
	b = binary.AppendUvarint(b, uint64(len(wi.rootBytes)))
	b = append(b, wi.rootBytes...)
	for k := range wi.runEnd {
		b = binary.AppendUvarint(b, uint64(wi.runEnd[k]-wi.runStart(int32(k))))
	}
	for i := 0; i < n; i++ {
		b = binary.AppendUvarint(b, uint64(wi.edgeStart[i+1]-wi.edgeStart[i]))
	}
	prev := int64(0)
	for _, e := range wi.edgeBuf {
		b = binary.AppendVarint(b, int64(e)-prev)
		prev = int64(e)
	}
	bits := make([]byte, (n+7)/8)
	for i := 0; i < n; i++ {
		if wi.edgeEndBit(int32(i)) {
			bits[i>>3] |= 1 << (uint(i) & 7)
		}
	}
	b = append(b, bits...)
	b = binary.AppendUvarint(b, uint64(len(wi.termPool)))
	for _, t := range wi.termPool {
		b = binary.AppendUvarint(b, uint64(t.Len))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(t.PR))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(t.Sim))
	}
	for _, ref := range wi.termRef {
		b = binary.AppendUvarint(b, uint64(ref))
	}
	return b
}

// decodeWordBlock rebuilds one word's columnar postings, validating every
// reference against the graph and pattern table, and re-derives both
// views. Returns the word id.
func decodeWordBlock(payload []byte, wi *wordIndex, g *kg.Graph, patRootType []kg.TypeID) (int, error) {
	r := &wreader{b: payload}
	w := r.count(1<<31, "word id")
	n := r.count(1<<30, "entry")
	nGroups := r.count(n, "group")
	if r.err == nil && (n < 1 || nGroups < 1) {
		return w, fmt.Errorf("index: word %d: empty posting block", w)
	}
	groupPats := make([]core.PatternID, 0, max(nGroups, 0))
	groupRuns := make([]int32, 0, max(nGroups, 0))
	totalRuns := 0
	for gi := 0; gi < nGroups && r.err == nil; gi++ {
		p := r.uvarint()
		if r.err == nil && p >= uint64(len(patRootType)) {
			return w, fmt.Errorf("index: word %d: entry references unknown pattern %d", w, p)
		}
		runs := r.count(n-totalRuns, "run")
		if r.err == nil && runs < 1 {
			return w, fmt.Errorf("index: word %d: empty pattern group", w)
		}
		pid := core.PatternID(p)
		if gi > 0 && r.err == nil {
			prev := groupPats[gi-1]
			pt, ct := patRootType[prev], patRootType[pid]
			if pt > ct || (pt == ct && prev >= pid) {
				return w, fmt.Errorf("index: word %d: pattern groups out of order", w)
			}
		}
		groupPats = append(groupPats, pid)
		groupRuns = append(groupRuns, int32(runs))
		totalRuns += runs
	}

	// Run roots: decode the per-group delta varints, validating strict
	// ascent and node range.
	rb := r.bytes(r.count(len(payload), "root byte"))
	runRoots := make([]kg.NodeID, 0, totalRuns)
	if r.err == nil {
		off := int32(0)
		for gi := 0; gi < nGroups; gi++ {
			prev := kg.NodeID(-1)
			for k := int32(0); k < groupRuns[gi]; k++ {
				if int(off) >= len(rb) {
					return w, fmt.Errorf("index: word %d: truncated run roots", w)
				}
				prev, off = decodeRootDelta(rb, off, prev)
				if int(prev) >= g.NumNodes() || prev < 0 {
					return w, fmt.Errorf("index: word %d: entry references node %d out of range", w, prev)
				}
				runRoots = append(runRoots, prev)
			}
		}
		if int(off) != len(rb) {
			return w, fmt.Errorf("index: word %d: %d trailing root bytes", w, len(rb)-int(off))
		}
	}

	// Run lengths -> runEnd.
	wi.runEnd = make([]int32, 0, totalRuns)
	sum := 0
	for k := 0; k < totalRuns && r.err == nil; k++ {
		l := r.count(n-sum, "run length")
		if r.err == nil && l < 1 {
			return w, fmt.Errorf("index: word %d: empty run", w)
		}
		sum += l
		wi.runEnd = append(wi.runEnd, int32(sum))
	}
	if r.err == nil && sum != n {
		return w, fmt.Errorf("index: word %d: runs cover %d of %d entries", w, sum, n)
	}

	// Edge counts -> edgeStart; then the zigzag-delta edge IDs.
	wi.n = int32(n)
	wi.edgeStart = make([]int32, n+1)
	totalEdges := 0
	for i := 0; i < n && r.err == nil; i++ {
		wi.edgeStart[i] = int32(totalEdges)
		totalEdges += r.count(1<<24, "edge")
		if totalEdges > 1<<30 {
			return w, fmt.Errorf("index: word %d: implausible edge total", w)
		}
	}
	wi.edgeStart[n] = int32(totalEdges)
	wi.edgeBuf = make([]kg.EdgeID, 0, totalEdges)
	prevEdge := int64(0)
	for j := 0; j < totalEdges && r.err == nil; j++ {
		prevEdge += r.varint()
		if r.err == nil && (prevEdge < 0 || prevEdge >= int64(g.NumEdges())) {
			return w, fmt.Errorf("index: word %d: entry references edge %d out of range", w, prevEdge)
		}
		wi.edgeBuf = append(wi.edgeBuf, kg.EdgeID(prevEdge))
	}

	// Edge-end bitset.
	bits := r.bytes((n + 7) / 8)
	wi.edgeEnds = make([]uint64, (n+63)/64)
	for i := 0; i < n && r.err == nil; i++ {
		if bits[i>>3]&(1<<(uint(i)&7)) != 0 {
			wi.edgeEnds[i>>6] |= 1 << (uint(i) & 63)
		}
	}

	// Term pool + per-entry references.
	poolLen := r.count(n, "term pool")
	if r.err == nil && poolLen < 1 {
		return w, fmt.Errorf("index: word %d: empty term pool", w)
	}
	wi.termPool = make([]core.ScoreTerms, 0, max(poolLen, 0))
	for i := 0; i < poolLen && r.err == nil; i++ {
		wi.termPool = append(wi.termPool, core.ScoreTerms{
			Len: r.count(1<<20, "path length"),
			PR:  r.float(),
			Sim: r.float(),
		})
	}
	wi.termRef = make([]uint32, n)
	for i := 0; i < n && r.err == nil; i++ {
		ref := r.uvarint()
		if r.err == nil && ref >= uint64(poolLen) {
			return w, fmt.Errorf("index: word %d: term reference %d out of range", w, ref)
		}
		wi.termRef[i] = uint32(ref)
	}
	if err := r.done(fmt.Sprintf("word %d block", w)); err != nil {
		return w, err
	}

	// Re-derive the group tables (rootBytes, skip table, bounds, type
	// groups) and the root-first view through the shared construction
	// paths. The per-run keys come straight from the run partition.
	buildGroupTables(wi, groupPats, groupRuns, runRoots, patRootType)
	runPats := make([]core.PatternID, len(runRoots))
	run := 0
	for gi := 0; gi < nGroups; gi++ {
		for k := int32(0); k < groupRuns[gi]; k++ {
			runPats[run] = groupPats[gi]
			run++
		}
	}
	buildRootFirst(wi, runPats, runRoots)
	return w, nil
}

// loadV2 reads the v2 container (magic still unconsumed in br).
func loadV2(br *bufio.Reader, g *kg.Graph) (*Index, error) {
	start := time.Now()
	if _, err := br.Discard(len(wireMagic)); err != nil {
		return nil, fmt.Errorf("index: %w", err)
	}
	id, payload, err := readFrame(br)
	if err != nil {
		return nil, err
	}
	if id != secHeader {
		return nil, fmt.Errorf("index: expected header section, got %d", id)
	}
	hr := &wreader{b: payload}
	version := hr.uvarint()
	d := hr.count(1<<20, "height threshold")
	nodes := hr.count(1<<40, "node")
	edges := hr.count(1<<40, "edge")
	numWords := hr.count(1<<31, "word")
	numPatterns := hr.count(1<<26, "pattern")
	if err := hr.done("header section"); err != nil {
		return nil, err
	}
	if version > WireVersion {
		return nil, fmt.Errorf("index: wire-format version %d not supported (this build reads up to %d)", version, WireVersion)
	}
	if version < 2 {
		return nil, fmt.Errorf("index: binary container with implausible version %d", version)
	}
	if nodes != g.NumNodes() || edges != g.NumEdges() {
		return nil, fmt.Errorf("index: built for a graph with %d nodes/%d edges, got %d/%d",
			nodes, edges, g.NumNodes(), g.NumEdges())
	}
	if d < 1 {
		return nil, fmt.Errorf("index: invalid height threshold %d", d)
	}

	id, payload, err = readFrame(br)
	if err != nil {
		return nil, err
	}
	if id != secDict {
		return nil, fmt.Errorf("index: expected dict section, got %d", id)
	}
	dict, err := decodeDict(payload)
	if err != nil {
		return nil, err
	}

	id, payload, err = readFrame(br)
	if err != nil {
		return nil, err
	}
	if id != secPats {
		return nil, fmt.Errorf("index: expected pattern section, got %d", id)
	}
	pats, err := decodePatterns(payload, g, numPatterns)
	if err != nil {
		return nil, err
	}

	ix := &Index{g: g, d: d, dict: dict, pt: core.TableFromSnapshot(pats)}
	patRootType := patternRootTypes(ix.pt)
	ix.words = make([]wordIndex, numWords)

	// Drain the word frames sequentially (the reader is a stream), then
	// decode the posting blocks in parallel.
	var blocks [][]byte
	for {
		id, payload, err = readFrame(br)
		if err != nil {
			return nil, err
		}
		if id == secEnd {
			break
		}
		if id != secWord {
			return nil, fmt.Errorf("index: unexpected section %d", id)
		}
		blocks = append(blocks, payload)
	}
	wordIDs := make([]int, len(blocks))
	errs := make([]error, len(blocks))
	parallelWords(len(blocks), defaultWorkers(0), func(bi int) {
		var wi wordIndex
		w, err := decodeWordBlock(blocks[bi], &wi, g, patRootType)
		wordIDs[bi] = w
		if err != nil {
			errs[bi] = err
			return
		}
		if w >= numWords {
			errs[bi] = fmt.Errorf("index: posting block for word %d beyond dictionary (%d words)", w, numWords)
			return
		}
		ix.words[w] = wi
	})
	prev := -1
	for bi := range blocks {
		if errs[bi] != nil {
			return nil, errs[bi]
		}
		if wordIDs[bi] <= prev {
			return nil, fmt.Errorf("index: posting blocks out of word order")
		}
		prev = wordIDs[bi]
	}
	for i := range ix.words {
		ix.stats.NumEntries += int64(ix.words[i].numEntries())
	}
	ix.stats.D = d
	ix.stats.NumPatterns = ix.pt.Len()
	ix.stats.Bytes = ix.sizeBytes()
	ix.stats.BuildTime = time.Since(start) // load time; cheaper than DFS
	return ix, nil
}
