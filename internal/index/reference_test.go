package index

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"kbtable/internal/core"
	"kbtable/internal/kg"
	"kbtable/internal/text"
)

// referencePaths enumerates, by a direct recursive walk with no shared
// state or interning, every (word, root, pattern, path) posting that
// Algorithm 1 should produce: simple paths of at most d nodes from every
// root, ending at nodes (text or type words) or edges (attribute words).
// It is deliberately naive — the oracle for the optimized builder.
func referencePaths(g *kg.Graph, d int) map[string][]string {
	out := map[string][]string{}
	norm := func(tok string) string {
		dict := text.NewDict()
		return dict.Word(dict.Canonical(dict.Intern(tok)))
	}
	record := func(word string, root kg.NodeID, p core.Path, patKey string) {
		key := norm(word)
		out[key] = append(out[key], fmt.Sprintf("r%d|%s|%v|%v", root, patKey, p.Edges, p.EdgeEnd))
	}
	var walk func(root, cur kg.NodeID, edges []kg.EdgeID, onPath map[kg.NodeID]bool)
	walk = func(root, cur kg.NodeID, edges []kg.EdgeID, onPath map[kg.NodeID]bool) {
		p := core.Path{Root: root, Edges: append([]kg.EdgeID(nil), edges...)}
		patKey := p.Pattern(g).Key()
		words := map[string]bool{}
		for _, tok := range text.TokenSet(g.Text(cur)) {
			words[tok] = true
		}
		if g.Type(cur) != kg.LiteralType {
			for _, tok := range text.TokenSet(g.TypeName(g.Type(cur))) {
				words[tok] = true
			}
		}
		for tok := range words {
			record(tok, root, p, patKey)
		}
		if len(edges) >= d-1 {
			return
		}
		for _, eid := range outEdgeIDs(g, cur) {
			e := g.Edge(eid)
			if onPath[e.Dst] {
				continue
			}
			ep := core.Path{Root: root, Edges: append(append([]kg.EdgeID(nil), edges...), eid), EdgeEnd: true}
			epKey := ep.Pattern(g).Key()
			for _, tok := range text.TokenSet(g.AttrName(e.Attr)) {
				record(tok, root, ep, epKey)
			}
			onPath[e.Dst] = true
			walk(root, e.Dst, append(edges, eid), onPath)
			onPath[e.Dst] = false
		}
	}
	for v := 0; v < g.NumNodes(); v++ {
		walk(kg.NodeID(v), kg.NodeID(v), nil, map[kg.NodeID]bool{kg.NodeID(v): true})
	}
	for k := range out {
		sort.Strings(out[k])
	}
	return out
}

func outEdgeIDs(g *kg.Graph, v kg.NodeID) []kg.EdgeID {
	first, n := g.OutEdges(v)
	out := make([]kg.EdgeID, n)
	for i := range out {
		out[i] = first + kg.EdgeID(i)
	}
	return out
}

// indexedPaths extracts the same normalized posting strings from a built
// index.
func indexedPaths(ix *Index) map[string][]string {
	out := map[string][]string{}
	g := ix.Graph()
	for w := 0; w < ix.Dict().Len(); w++ {
		id := text.WordID(w)
		if ix.Dict().Canonical(id) != id {
			continue // postings live under the canonical id only
		}
		var recs []string
		for _, r := range ix.Roots(id) {
			ix.PathsAt(id, r, func(e *Entry) {
				p := ix.Path(id, e)
				recs = append(recs, fmt.Sprintf("r%d|%s|%v|%v", r, p.Pattern(g).Key(), p.Edges, p.EdgeEnd))
			})
		}
		if len(recs) > 0 {
			sort.Strings(recs)
			out[ix.Dict().Word(id)] = recs
		}
	}
	return out
}

// TestIndexMatchesBruteForceReference cross-checks the optimized parallel
// builder against the naive oracle on random graphs across d values.
func TestIndexMatchesBruteForceReference(t *testing.T) {
	vocab := []string{"ant", "bee", "cat", "dog", "elk"}
	types := []string{"Alpha", "Beta", "Gamma"}
	attrs := []string{"likes", "eats", "sees"}
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		b := kg.NewBuilder()
		n := 5 + rng.Intn(12)
		ids := make([]kg.NodeID, n)
		for i := 0; i < n; i++ {
			txt := vocab[rng.Intn(len(vocab))]
			if rng.Float64() < 0.4 {
				txt += " " + vocab[rng.Intn(len(vocab))]
			}
			ids[i] = b.Entity(types[rng.Intn(len(types))], txt)
		}
		for i := 0; i < 2*n; i++ {
			b.Attr(ids[rng.Intn(n)], attrs[rng.Intn(len(attrs))], ids[rng.Intn(n)])
		}
		g := b.MustFreeze()
		for _, d := range []int{1, 2, 3} {
			ix, err := Build(g, Options{D: d, UniformPR: true, Workers: 1 + int(seed%3)})
			if err != nil {
				t.Fatal(err)
			}
			want := referencePaths(g, d)
			got := indexedPaths(ix)
			// Words in the reference correspond to canonical forms; both
			// sides normalize through a fresh dictionary's stem logic, so
			// keys must line up exactly.
			for w, wantRecs := range want {
				gotRecs, ok := got[w]
				if !ok {
					t.Fatalf("seed=%d d=%d: word %q missing from index (want %d postings)", seed, d, w, len(wantRecs))
				}
				if strings.Join(gotRecs, ";") != strings.Join(wantRecs, ";") {
					t.Fatalf("seed=%d d=%d word=%q: postings differ\n got: %v\nwant: %v", seed, d, w, gotRecs, wantRecs)
				}
			}
			for w := range got {
				if _, ok := want[w]; !ok {
					t.Fatalf("seed=%d d=%d: index has unexpected word %q", seed, d, w)
				}
			}
		}
	}
}
