package index

import (
	"testing"

	"kbtable/internal/core"
	"kbtable/internal/dataset"
	"kbtable/internal/text"
)

// TestPatternBoundsCoverEntries verifies, exhaustively on two corpora,
// that every (word, pattern) posting group's PatternBounds actually bound
// the group's entries: term ranges contain every path's terms, and MaxRun
// dominates every root's path count. The streaming executor's pruning is
// only sound if these invariants hold for every construction path, so the
// synthetic corpus goes through Build with real (non-uniform) PageRank.
func TestPatternBoundsCoverEntries(t *testing.T) {
	fig1, _, _ := buildFig1(t, 3)
	wiki := dataset.SynthWiki(dataset.WikiConfig{Entities: 120, Types: 10, Seed: 7})
	wikiIx, err := Build(wiki, Options{D: 3})
	if err != nil {
		t.Fatal(err)
	}
	for name, ix := range map[string]*Index{"fig1": fig1, "wiki": wikiIx} {
		checked := 0
		for w := text.WordID(0); int(w) < ix.Dict().Len(); w++ {
			for _, p := range ix.Patterns(w) {
				b, ok := ix.PatternBounds(w, p)
				if !ok {
					t.Fatalf("%s: pattern %d listed for word %d but has no bounds", name, p, w)
				}
				if b.MaxRun < 1 {
					t.Fatalf("%s: nonempty group has MaxRun %d", name, b.MaxRun)
				}
				for _, r := range ix.RootsOf(w, p) {
					es := ix.PathsPF(w, p, r)
					if len(es) == 0 || len(es) > b.MaxRun {
						t.Fatalf("%s: run length %d outside (0, MaxRun=%d]", name, len(es), b.MaxRun)
					}
					for i := range es {
						terms := es[i].Terms
						if terms.Len < b.MinLen || terms.Len > b.MaxLen {
							t.Fatalf("%s: Len %d outside [%d, %d]", name, terms.Len, b.MinLen, b.MaxLen)
						}
						if terms.PR < b.MinPR || terms.PR > b.MaxPR {
							t.Fatalf("%s: PR %v outside [%v, %v]", name, terms.PR, b.MinPR, b.MaxPR)
						}
						if terms.Sim < b.MinSim || terms.Sim > b.MaxSim {
							t.Fatalf("%s: Sim %v outside [%v, %v]", name, terms.Sim, b.MinSim, b.MaxSim)
						}
					}
				}
				checked++
			}
		}
		if checked == 0 {
			t.Fatalf("%s: no posting groups checked", name)
		}
	}
}

// TestPatternBoundsUnknown pins the miss paths: unknown words and patterns
// the word never reaches report no bounds instead of zero-valued ones.
func TestPatternBoundsUnknown(t *testing.T) {
	ix, _, _ := buildFig1(t, 3)
	if _, ok := ix.PatternBounds(text.WordID(1_000_000), 0); ok {
		t.Errorf("out-of-range word should have no bounds")
	}
	w := wordID(t, ix, "database")
	reached := map[core.PatternID]bool{}
	for _, p := range ix.Patterns(w) {
		reached[p] = true
	}
	for p := 0; p < ix.PatternTable().Len(); p++ {
		if id := core.PatternID(p); !reached[id] {
			if _, ok := ix.PatternBounds(w, id); ok {
				t.Errorf("pattern %d not reached by word but reported bounds", p)
			}
			return
		}
	}
}
