// Package rank computes PageRank scores over a knowledge graph, the node
// importance used by the paper's score2 (Section 2.2.3): initial value
// 1/|V|, damping factor a = 0.85, iterated until every node's score changes
// by less than 1e-8 (both configurable).
package rank

import "kbtable/internal/kg"

// Options control the PageRank iteration.
type Options struct {
	// Damping is the paper's a; 0.85 if zero.
	Damping float64
	// Epsilon is the per-node convergence threshold; 1e-8 if zero.
	Epsilon float64
	// MaxIter caps the iteration count as a safety net; 200 if zero.
	MaxIter int
}

func (o Options) withDefaults() Options {
	if o.Damping == 0 {
		o.Damping = 0.85
	}
	if o.Epsilon == 0 {
		o.Epsilon = 1e-8
	}
	if o.MaxIter == 0 {
		o.MaxIter = 200
	}
	return o
}

// PageRank returns one score per node. Dangling nodes (out-degree 0, e.g.
// every Literal dummy entity) distribute their mass uniformly, the standard
// correction that keeps scores summing to 1.
func PageRank(g *kg.Graph, opts Options) []float64 {
	o := opts.withDefaults()
	n := g.NumNodes()
	if n == 0 {
		return nil
	}
	inv := 1.0 / float64(n)
	cur := make([]float64, n)
	next := make([]float64, n)
	for i := range cur {
		cur[i] = inv
	}

	for iter := 0; iter < o.MaxIter; iter++ {
		base := (1 - o.Damping) * inv
		// Dangling mass is re-distributed uniformly.
		dangling := 0.0
		for v := 0; v < n; v++ {
			if g.OutDegree(kg.NodeID(v)) == 0 {
				dangling += cur[v]
			}
		}
		base += o.Damping * dangling * inv
		for i := range next {
			next[i] = base
		}
		for v := 0; v < n; v++ {
			deg := g.OutDegree(kg.NodeID(v))
			if deg == 0 {
				continue
			}
			share := o.Damping * cur[v] / float64(deg)
			for _, e := range g.OutEdgeSlice(kg.NodeID(v)) {
				next[e.Dst] += share
			}
		}
		maxDelta := 0.0
		for i := range cur {
			d := next[i] - cur[i]
			if d < 0 {
				d = -d
			}
			if d > maxDelta {
				maxDelta = d
			}
		}
		cur, next = next, cur
		if maxDelta < o.Epsilon {
			break
		}
	}
	return cur
}

// Uniform returns the all-ones score vector, matching Example 2.4's
// "assuming every node has the same PageRank score 1". Useful in tests and
// ablations isolating score2's influence.
func Uniform(g *kg.Graph) []float64 {
	pr := make([]float64, g.NumNodes())
	for i := range pr {
		pr[i] = 1
	}
	return pr
}
