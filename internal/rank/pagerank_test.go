package rank

import (
	"math"
	"math/rand"
	"testing"

	"kbtable/internal/kg"
)

func chain(n int) *kg.Graph {
	b := kg.NewBuilder()
	var ids []kg.NodeID
	for i := 0; i < n; i++ {
		ids = append(ids, b.Entity("T", "v"))
	}
	for i := 0; i+1 < n; i++ {
		b.Attr(ids[i], "next", ids[i+1])
	}
	return b.MustFreeze()
}

func TestPageRankSumsToOne(t *testing.T) {
	g := chain(10)
	pr := PageRank(g, Options{})
	sum := 0.0
	for _, p := range pr {
		sum += p
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("PageRank sum = %v, want 1", sum)
	}
}

func TestPageRankChainMonotone(t *testing.T) {
	// On a directed chain, rank accumulates downstream.
	g := chain(5)
	pr := PageRank(g, Options{})
	for i := 0; i+1 < len(pr); i++ {
		if pr[i] >= pr[i+1] {
			t.Errorf("chain rank should strictly increase: pr[%d]=%v >= pr[%d]=%v", i, pr[i], i+1, pr[i+1])
		}
	}
}

func TestPageRankStar(t *testing.T) {
	// Hub pointing at k spokes: all spokes equal, hub lowest.
	b := kg.NewBuilder()
	hub := b.Entity("T", "hub")
	var spokes []kg.NodeID
	for i := 0; i < 4; i++ {
		s := b.Entity("T", "spoke")
		spokes = append(spokes, s)
		b.Attr(hub, "a", s)
	}
	g := b.MustFreeze()
	pr := PageRank(g, Options{})
	for i := 1; i < len(spokes); i++ {
		if math.Abs(pr[spokes[i]]-pr[spokes[0]]) > 1e-9 {
			t.Errorf("spokes should have equal rank")
		}
	}
	if pr[hub] >= pr[spokes[0]] {
		t.Errorf("hub rank %v should be below spoke rank %v", pr[hub], pr[spokes[0]])
	}
}

func TestPageRankCycleUniform(t *testing.T) {
	// A directed cycle is symmetric: all nodes get 1/n.
	b := kg.NewBuilder()
	n := 6
	var ids []kg.NodeID
	for i := 0; i < n; i++ {
		ids = append(ids, b.Entity("T", "v"))
	}
	for i := 0; i < n; i++ {
		b.Attr(ids[i], "a", ids[(i+1)%n])
	}
	g := b.MustFreeze()
	pr := PageRank(g, Options{})
	for _, p := range pr {
		if math.Abs(p-1.0/float64(n)) > 1e-7 {
			t.Errorf("cycle rank %v, want %v", p, 1.0/float64(n))
		}
	}
}

func TestPageRankEmptyGraph(t *testing.T) {
	g := kg.NewBuilder().MustFreeze()
	if pr := PageRank(g, Options{}); pr != nil {
		t.Errorf("empty graph should return nil")
	}
}

func TestPageRankRandomGraphInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	b := kg.NewBuilder()
	n := 200
	var ids []kg.NodeID
	for i := 0; i < n; i++ {
		ids = append(ids, b.Entity("T", "v"))
	}
	for i := 0; i < 800; i++ {
		b.Attr(ids[rng.Intn(n)], "a", ids[rng.Intn(n)])
	}
	g := b.MustFreeze()
	pr := PageRank(g, Options{})
	sum := 0.0
	for _, p := range pr {
		if p <= 0 {
			t.Fatalf("rank must be positive, got %v", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("sum = %v, want 1", sum)
	}
}

func TestPageRankMaxIterRespected(t *testing.T) {
	g := chain(50)
	// One iteration only: result differs from converged run.
	one := PageRank(g, Options{MaxIter: 1})
	full := PageRank(g, Options{})
	diff := 0.0
	for i := range one {
		diff += math.Abs(one[i] - full[i])
	}
	if diff == 0 {
		t.Errorf("1-iteration result should differ from converged result")
	}
}

func TestUniform(t *testing.T) {
	g := chain(3)
	u := Uniform(g)
	if len(u) != 3 {
		t.Fatalf("len = %d", len(u))
	}
	for _, v := range u {
		if v != 1 {
			t.Errorf("uniform score should be 1")
		}
	}
}
