package bench

import (
	"testing"

	"kbtable/internal/dataset"
	"kbtable/internal/index"
)

// TestIndexFootprintPinsWireV2Claims pins the headline footprint claims
// at test scale: the v2 snapshot is at least 30% smaller than the legacy
// gob container, loads at least 2x faster than it, and the resident
// representation stays well under the ~97 B/entry the row-oriented
// layout measured on this same corpus before the columnar rewrite.
func TestIndexFootprintPinsWireV2Claims(t *testing.T) {
	g := dataset.SynthWiki(dataset.WikiConfig{Entities: 2000, Types: 40, Seed: 1})
	ix, err := index.Build(g, index.Options{D: 3, Workers: 0})
	if err != nil {
		t.Fatal(err)
	}
	fp, err := IndexFootprint("wiki", g, ix)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("footprint: %+v", fp)
	if fp.Entries == 0 || fp.ResidentBytes == 0 {
		t.Fatalf("degenerate footprint row: %+v", fp)
	}
	if fp.ShrinkVsGob < 0.30 {
		t.Errorf("v2 snapshot only %.0f%% smaller than gob, want >=30%%", fp.ShrinkVsGob*100)
	}
	if fp.LoadSpeedupVsGob < 2 {
		t.Errorf("v2 load only %.1fx faster than gob, want >=2x", fp.LoadSpeedupVsGob)
	}
	if fp.BytesPerEntry <= 0 || fp.BytesPerEntry >= 80 {
		t.Errorf("resident %.1f B/entry, want well under the ~97 B/entry row-layout baseline", fp.BytesPerEntry)
	}
}
