// Package bench reproduces every table and figure of the paper's
// experimental study (Section 5 and Appendix C) on the synthetic Wiki and
// IMDB stand-ins. Each RunFigN function regenerates one artifact as a
// formatted table; cmd/kbbench runs the full suite and bench_test.go wraps
// each experiment in a testing.B benchmark.
package bench

import (
	"fmt"
	"sync"

	"kbtable/internal/dataset"
	"kbtable/internal/index"
	"kbtable/internal/kg"
	"kbtable/internal/search"
)

// Config scales the experiment suite. The defaults run the full suite in
// minutes on a laptop; the paper's absolute dataset sizes are out of scope
// (see DESIGN.md), the comparative shapes are in scope.
type Config struct {
	// WikiEntities / WikiTypes scale SynthWiki; defaults 12000 / 120.
	WikiEntities int
	WikiTypes    int
	// IMDBMovies scales SynthIMDB; default 6000.
	IMDBMovies int
	// PerM is the number of workload queries per keyword count 1..MaxM;
	// default 20 (the paper uses 50).
	PerM int
	// MaxM is the maximum keyword count; default 10.
	MaxM int
	// K is the top-k cutoff; default 100 like the paper.
	K int
	// Ds are the height thresholds exercised by Figures 6 and 7;
	// default {2, 3, 4}.
	Ds []int
	// BaselineTreeCap caps the subtrees the baseline dictionary stores per
	// pattern during timed runs, protecting memory on explosive queries
	// without changing scores; default 8.
	BaselineTreeCap int
	// SkipBaselineOver skips the baseline on queries with more valid
	// subtrees than this (it would dominate suite runtime); default 1e6.
	SkipBaselineOver int64
	// SkipOver excludes queries with more valid subtrees than this from
	// the timed experiments entirely; exact enumeration on them is the
	// paper's 10^6-ms regime. Default 3e6.
	SkipOver int64
	// Seed drives dataset and workload generation; default 1.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.WikiEntities == 0 {
		c.WikiEntities = 12000
	}
	if c.WikiTypes == 0 {
		c.WikiTypes = 120
	}
	if c.IMDBMovies == 0 {
		c.IMDBMovies = 6000
	}
	if c.PerM == 0 {
		c.PerM = 20
	}
	if c.MaxM == 0 {
		c.MaxM = 10
	}
	if c.K == 0 {
		c.K = 100
	}
	if len(c.Ds) == 0 {
		c.Ds = []int{2, 3, 4}
	}
	if c.BaselineTreeCap == 0 {
		c.BaselineTreeCap = 8
	}
	if c.SkipBaselineOver == 0 {
		c.SkipBaselineOver = 1_000_000
	}
	if c.SkipOver == 0 {
		c.SkipOver = 3_000_000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Env lazily builds and caches the graphs, indexes, baselines and query
// workloads the experiments share.
type Env struct {
	Cfg Config

	mu          sync.Mutex
	wiki        *kg.Graph
	wikiIdx     map[int]*index.Index
	wikiBl      map[int]*search.BaselineIndex
	wikiQueries []dataset.Query
	imdb        *kg.Graph
	imdbIdx     *index.Index
	imdbBl      *search.BaselineIndex
	imdbQueries []dataset.Query
}

// NewEnv returns an Env with the given (defaulted) configuration.
func NewEnv(cfg Config) *Env {
	return &Env{
		Cfg:     cfg.withDefaults(),
		wikiIdx: map[int]*index.Index{},
		wikiBl:  map[int]*search.BaselineIndex{},
	}
}

// Wiki returns the SynthWiki graph.
func (e *Env) Wiki() *kg.Graph {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.wiki == nil {
		e.wiki = dataset.SynthWiki(dataset.WikiConfig{
			Entities: e.Cfg.WikiEntities,
			Types:    e.Cfg.WikiTypes,
			Seed:     e.Cfg.Seed,
		})
	}
	return e.wiki
}

// WikiIndex returns the path index over Wiki at height threshold d.
func (e *Env) WikiIndex(d int) *index.Index {
	g := e.Wiki()
	e.mu.Lock()
	defer e.mu.Unlock()
	if ix, ok := e.wikiIdx[d]; ok {
		return ix
	}
	ix, err := index.Build(g, index.Options{D: d})
	if err != nil {
		panic(fmt.Sprintf("bench: wiki index d=%d: %v", d, err))
	}
	e.wikiIdx[d] = ix
	return ix
}

// WikiBaseline returns the baseline match index over Wiki at threshold d.
func (e *Env) WikiBaseline(d int) *search.BaselineIndex {
	g := e.Wiki()
	e.mu.Lock()
	defer e.mu.Unlock()
	if bl, ok := e.wikiBl[d]; ok {
		return bl
	}
	bl, err := search.NewBaseline(g, search.BaselineOptions{D: d})
	if err != nil {
		panic(fmt.Sprintf("bench: wiki baseline: %v", err))
	}
	e.wikiBl[d] = bl
	return bl
}

// WikiQueries returns the Wiki workload (PerM queries per m in 1..MaxM).
func (e *Env) WikiQueries() []dataset.Query {
	g := e.Wiki()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.wikiQueries == nil {
		e.wikiQueries = dataset.Workload(g, dataset.WorkloadConfig{
			PerM: e.Cfg.PerM, MaxM: e.Cfg.MaxM, Seed: e.Cfg.Seed,
		})
	}
	return e.wikiQueries
}

// IMDB returns the SynthIMDB graph.
func (e *Env) IMDB() *kg.Graph {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.imdb == nil {
		e.imdb = dataset.SynthIMDB(dataset.IMDBConfig{Movies: e.Cfg.IMDBMovies, Seed: e.Cfg.Seed})
	}
	return e.imdb
}

// IMDBIndex returns the path index over IMDB at d=3 (paths never exceed 3
// nodes, so larger d changes nothing — Section 5.1).
func (e *Env) IMDBIndex() *index.Index {
	g := e.IMDB()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.imdbIdx == nil {
		ix, err := index.Build(g, index.Options{D: 3})
		if err != nil {
			panic(fmt.Sprintf("bench: imdb index: %v", err))
		}
		e.imdbIdx = ix
	}
	return e.imdbIdx
}

// IMDBBaseline returns the baseline match index over IMDB.
func (e *Env) IMDBBaseline() *search.BaselineIndex {
	g := e.IMDB()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.imdbBl == nil {
		bl, err := search.NewBaseline(g, search.BaselineOptions{D: 3})
		if err != nil {
			panic(fmt.Sprintf("bench: imdb baseline: %v", err))
		}
		e.imdbBl = bl
	}
	return e.imdbBl
}

// IMDBQueries returns the IMDB workload.
func (e *Env) IMDBQueries() []dataset.Query {
	g := e.IMDB()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.imdbQueries == nil {
		e.imdbQueries = dataset.Workload(g, dataset.WorkloadConfig{
			PerM: e.Cfg.PerM, MaxM: e.Cfg.MaxM, Seed: e.Cfg.Seed + 7,
		})
	}
	return e.imdbQueries
}
