package bench

import (
	"fmt"
	"time"

	"kbtable/internal/dataset"
	"kbtable/internal/index"
	"kbtable/internal/kg"
	"kbtable/internal/search"
)

// queryCost caches the grouping statistics of one workload query.
type queryCost struct {
	q        dataset.Query
	patterns int
	trees    int64
	exceeded bool // more subtrees than Config.SkipOver: excluded from runs
}

// costs computes CountAllCapped for every query once per index. Queries
// whose subtree count exceeds the budget are marked and later skipped:
// exact enumeration on them is the paper's 10^6-ms regime (Figure 7, d=4),
// out of budget for a laptop suite.
func costs(e *Env, ix *index.Index, qs []dataset.Query) []queryCost {
	out := make([]queryCost, 0, len(qs))
	for _, q := range qs {
		p, t, ex := search.CountAllCapped(ix, q.Text, e.Cfg.SkipOver)
		out = append(out, queryCost{q: q, patterns: p, trees: t, exceeded: ex})
	}
	return out
}

// timedRun measures one algorithm on one query. The returned duration is
// the search's self-reported elapsed time (excludes grouping bookkeeping).
func (e *Env) timedRun(ix *index.Index, bl *search.BaselineIndex, algo string, q string) time.Duration {
	opts := search.Options{K: e.Cfg.K, SkipTrees: true}
	switch algo {
	case "Baseline":
		opts.MaxTreesPerPattern = e.Cfg.BaselineTreeCap
		res := bl.Search(q, opts)
		return res.Stats.Elapsed
	case "LETopK":
		res := search.LETopK(ix, q, opts)
		return res.Stats.Elapsed
	case "PETopK":
		res := search.PETopK(ix, q, opts)
		return res.Stats.Elapsed
	}
	panic("unknown algorithm " + algo)
}

// RunFig6 reproduces Figure 6: index construction time and size on Wiki
// for each height threshold d.
func RunFig6(e *Env) Table {
	t := Table{
		Title:  "Figure 6: index construction cost on SynthWiki for different d",
		Header: []string{"d", "Time (s)", "Size (MB)", "Entries", "Patterns"},
	}
	for _, d := range e.Cfg.Ds {
		// Rebuild (not cached) so the time is honest even if the env has
		// already built this index for another experiment.
		ix, err := index.Build(e.Wiki(), index.Options{D: d})
		if err != nil {
			panic(err)
		}
		s := ix.Stats()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", d),
			fmt.Sprintf("%.2f", s.BuildTime.Seconds()),
			fmt.Sprintf("%.1f", float64(s.Bytes)/(1<<20)),
			fmt.Sprintf("%d", s.NumEntries),
			fmt.Sprintf("%d", s.NumPatterns),
		})
	}
	g := e.Wiki().Stats()
	t.Notes = append(t.Notes, fmt.Sprintf("SynthWiki: %d nodes, %d edges, %d types", g.Nodes, g.Edges, g.Types))
	return t
}

// timeByBucket is the shared engine of Figures 7, 8 and 9: run the three
// algorithms on every query, group by the decade bucket of the chosen
// count, and report min/geo-avg/max execution time per group.
func (e *Env) timeByBucket(ix *index.Index, bl *search.BaselineIndex, cs []queryCost, by func(queryCost) int64) map[int64]*algoSet {
	groups := map[int64]*algoSet{}
	for _, c := range cs {
		if c.exceeded {
			continue
		}
		b := bucketOf(by(c))
		if b == 0 {
			continue // no answers; the paper's x-axes start at 10
		}
		gset, ok := groups[b]
		if !ok {
			gset = &algoSet{}
			groups[b] = gset
		}
		if c.trees <= e.Cfg.SkipBaselineOver {
			gset.baseline.add(e.timedRun(ix, bl, "Baseline", c.q.Text))
		}
		gset.letopk.add(e.timedRun(ix, bl, "LETopK", c.q.Text))
		gset.petopk.add(e.timedRun(ix, bl, "PETopK", c.q.Text))
	}
	return groups
}

func bucketTable(title string, xlabel string, groups map[int64]*algoSet) Table {
	t := Table{
		Title:  title,
		Header: []string{xlabel, "queries", "Baseline (min/geo/max)", "LETopK (min/geo/max)", "PETopK (min/geo/max)"},
	}
	for _, b := range sortedBuckets(groups) {
		gset := groups[b]
		t.Rows = append(t.Rows, []string{
			bucketLabel(b),
			fmt.Sprintf("%d", gset.petopk.n()),
			gset.baseline.minGeoMax(),
			gset.letopk.minGeoMax(),
			gset.petopk.minGeoMax(),
		})
	}
	return t
}

// RunFig7 reproduces Figure 7: execution time vs number of tree patterns
// on Wiki, one table per height threshold d.
func RunFig7(e *Env) []Table {
	var out []Table
	for _, d := range e.Cfg.Ds {
		ix := e.WikiIndex(d)
		bl := e.WikiBaseline(d)
		cs := costs(e, ix, e.WikiQueries())
		groups := e.timeByBucket(ix, bl, cs, func(c queryCost) int64 { return int64(c.patterns) })
		out = append(out, bucketTable(
			fmt.Sprintf("Figure 7 (d=%d): execution time vs #tree patterns, SynthWiki", d),
			"#patterns", groups))
	}
	return out
}

// RunFig8 reproduces Figure 8: execution time vs number of tree patterns
// on IMDB at d=3.
func RunFig8(e *Env) Table {
	ix := e.IMDBIndex()
	bl := e.IMDBBaseline()
	cs := costs(e, ix, e.IMDBQueries())
	groups := e.timeByBucket(ix, bl, cs, func(c queryCost) int64 { return int64(c.patterns) })
	return bucketTable("Figure 8 (d=3): execution time vs #tree patterns, SynthIMDB", "#patterns", groups)
}

// RunFig9 reproduces Figure 9: execution time vs number of valid subtrees
// on Wiki (a) and IMDB (b), d=3.
func RunFig9(e *Env) []Table {
	ixW := e.WikiIndex(3)
	blW := e.WikiBaseline(3)
	csW := costs(e, ixW, e.WikiQueries())
	gW := e.timeByBucket(ixW, blW, csW, func(c queryCost) int64 { return c.trees })

	ixI := e.IMDBIndex()
	blI := e.IMDBBaseline()
	csI := costs(e, ixI, e.IMDBQueries())
	gI := e.timeByBucket(ixI, blI, csI, func(c queryCost) int64 { return c.trees })

	return []Table{
		bucketTable("Figure 9(a): execution time vs #valid subtrees, SynthWiki (d=3)", "#subtrees", gW),
		bucketTable("Figure 9(b): execution time vs #valid subtrees, SynthIMDB (d=3)", "#subtrees", gI),
	}
}

// RunFig10 reproduces Figure 10 / Exp-III: execution time on induced
// subgraphs of 10%..100% of the Wiki entities (d=3), geo-averaged over the
// workload.
func RunFig10(e *Env) Table {
	t := Table{
		Title:  "Figure 10: execution time vs knowledge-graph size (SynthWiki, d=3)",
		Header: []string{"entities", "Baseline geo(ms)", "LETopK geo(ms)", "PETopK geo(ms)"},
	}
	qs := e.WikiQueries()
	full := e.Wiki()
	for pct := 10; pct <= 100; pct += 10 {
		var g *kg.Graph
		if pct == 100 {
			g = full
		} else {
			sub := dataset.RandomEntitySubset(full, float64(pct)/100, e.Cfg.Seed)
			g, _ = kg.Induce(full, sub)
		}
		ix, err := index.Build(g, index.Options{D: 3})
		if err != nil {
			panic(err)
		}
		bl, err := search.NewBaseline(g, search.BaselineOptions{D: 3})
		if err != nil {
			panic(err)
		}
		var tb, tl, tp timing
		for _, q := range qs {
			_, trees, ex := search.CountAllCapped(ix, q.Text, e.Cfg.SkipOver)
			if ex {
				continue
			}
			if trees <= e.Cfg.SkipBaselineOver {
				tb.add(e.timedRun(ix, bl, "Baseline", q.Text))
			}
			tl.add(e.timedRun(ix, bl, "LETopK", q.Text))
			tp.add(e.timedRun(ix, bl, "PETopK", q.Text))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d%%", pct),
			fmt.Sprintf("%.2f", tb.geoMs()),
			fmt.Sprintf("%.2f", tl.geoMs()),
			fmt.Sprintf("%.2f", tp.geoMs()),
		})
	}
	return t
}

// RunExpK reproduces Exp-IV: the value of k has very little impact on
// execution time (top-k maintenance is O(log k) per pattern).
func RunExpK(e *Env) Table {
	t := Table{
		Title:  "Exp-IV: execution time vs k (SynthWiki, d=3)",
		Header: []string{"k", "LETopK geo(ms)", "PETopK geo(ms)"},
	}
	ix := e.WikiIndex(3)
	qs := e.WikiQueries()
	for _, k := range []int{1, 10, 100, 1000} {
		var tl, tp timing
		for _, q := range qs {
			res := search.LETopK(ix, q.Text, search.Options{K: k, SkipTrees: true})
			tl.add(res.Stats.Elapsed)
			res = search.PETopK(ix, q.Text, search.Options{K: k, SkipTrees: true})
			tp.add(res.Stats.Elapsed)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%.2f", tl.geoMs()),
			fmt.Sprintf("%.2f", tp.geoMs()),
		})
	}
	return t
}

// RunFig16 reproduces Figure 16 / Exp-A-I: execution time for queries with
// different numbers of keywords (performance must not deteriorate with m).
func RunFig16(e *Env) Table {
	t := Table{
		Title:  "Figure 16: execution time vs number of keywords (SynthWiki, d=3)",
		Header: []string{"m", "queries", "Baseline (min/geo/max)", "LETopK (min/geo/max)", "PETopK (min/geo/max)"},
	}
	ix := e.WikiIndex(3)
	bl := e.WikiBaseline(3)
	byM := map[int]*algoSet{}
	for _, q := range e.WikiQueries() {
		gset, ok := byM[q.M]
		if !ok {
			gset = &algoSet{}
			byM[q.M] = gset
		}
		_, trees, ex := search.CountAllCapped(ix, q.Text, e.Cfg.SkipOver)
		if ex {
			continue
		}
		if trees <= e.Cfg.SkipBaselineOver {
			gset.baseline.add(e.timedRun(ix, bl, "Baseline", q.Text))
		}
		gset.letopk.add(e.timedRun(ix, bl, "LETopK", q.Text))
		gset.petopk.add(e.timedRun(ix, bl, "PETopK", q.Text))
	}
	for m := 1; m <= e.Cfg.MaxM; m++ {
		gset, ok := byM[m]
		if !ok {
			continue
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", m),
			fmt.Sprintf("%d", gset.petopk.n()),
			gset.baseline.minGeoMax(),
			gset.letopk.minGeoMax(),
			gset.petopk.minGeoMax(),
		})
	}
	return t
}
