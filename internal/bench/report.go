package bench

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Table is one experiment artifact, formatted like the paper's tables with
// error-bar style min / geometric-average / max cells where applicable.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the table as fixed-width ASCII.
func (t Table) String() string {
	var sb strings.Builder
	sb.WriteString("== " + t.Title + " ==\n")
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) {
				for p := len(c); p < widths[i]; p++ {
					sb.WriteByte(' ')
				}
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	total := 0
	for i, w := range widths {
		total += w
		if i > 0 {
			total += 2
		}
	}
	sb.WriteString(strings.Repeat("-", total) + "\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		sb.WriteString("note: " + n + "\n")
	}
	return sb.String()
}

// timing accumulates per-group execution times.
type timing struct {
	durs []time.Duration
}

func (t *timing) add(d time.Duration) { t.durs = append(t.durs, d) }

func (t *timing) n() int { return len(t.durs) }

// minGeoMax formats "min / geo-avg / max" in milliseconds, the paper's
// error-bar reporting.
func (t *timing) minGeoMax() string {
	if len(t.durs) == 0 {
		return "-"
	}
	mn, mx := t.durs[0], t.durs[0]
	logSum := 0.0
	for _, d := range t.durs {
		if d < mn {
			mn = d
		}
		if d > mx {
			mx = d
		}
		ms := float64(d) / float64(time.Millisecond)
		if ms < 1e-3 {
			ms = 1e-3
		}
		logSum += math.Log(ms)
	}
	geo := math.Exp(logSum / float64(len(t.durs)))
	return fmt.Sprintf("%s/%s/%s", fmtMs(float64(mn)/float64(time.Millisecond)), fmtMs(geo), fmtMs(float64(mx)/float64(time.Millisecond)))
}

// geoMs returns only the geometric average in milliseconds.
func (t *timing) geoMs() float64 {
	if len(t.durs) == 0 {
		return 0
	}
	logSum := 0.0
	for _, d := range t.durs {
		ms := float64(d) / float64(time.Millisecond)
		if ms < 1e-3 {
			ms = 1e-3
		}
		logSum += math.Log(ms)
	}
	return math.Exp(logSum / float64(len(t.durs)))
}

func fmtMs(ms float64) string {
	switch {
	case ms >= 1000:
		return fmt.Sprintf("%.1fs", ms/1000)
	case ms >= 10:
		return fmt.Sprintf("%.0fms", ms)
	case ms >= 1:
		return fmt.Sprintf("%.1fms", ms)
	default:
		return fmt.Sprintf("%.2fms", ms)
	}
}

// bucketOf assigns a count to its decade group: group 10^k holds counts in
// [10^(k-1), 10^k), matching "group 10^2 contains all queries with 10-99
// tree patterns". Counts of zero return 0 (excluded).
func bucketOf(n int64) int64 {
	if n <= 0 {
		return 0
	}
	b := int64(10)
	for n >= b {
		b *= 10
	}
	return b
}

// bucketLabel renders a decade bucket as 10^k.
func bucketLabel(b int64) string {
	k := 0
	for v := b; v > 1; v /= 10 {
		k++
	}
	return fmt.Sprintf("10^%d", k)
}

// sortedBuckets returns the keys of a bucket map in ascending order.
func sortedBuckets[T any](m map[int64]T) []int64 {
	out := make([]int64, 0, len(m))
	for b := range m {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// algoSet groups the three timings of one query group.
type algoSet struct {
	baseline timing
	letopk   timing
	petopk   timing
}
