package bench

import (
	"fmt"
	"strings"

	"kbtable/internal/core"
	"kbtable/internal/search"
)

// RunFig13 reproduces Figure 13 / Section 5.3: the average coverage of the
// individual top-k valid subtrees inside the top-k tree patterns, and the
// fraction of top-k tree patterns that are "new" (contain no individual
// top-k subtree), for k = 10..100.
func RunFig13(e *Env) Table {
	ix := e.WikiIndex(3)
	t := Table{
		Title:  "Figure 13: individual top-k subtrees vs top-k tree patterns (SynthWiki, d=3)",
		Header: []string{"k", "queries", "coverage %", "new patterns %"},
	}
	// Individual-tree ranking enumerates every subtree, so skip explosive
	// queries like the paper skips nothing at 96GB — we cap for laptops.
	const maxTrees = 500_000
	cs := costs(e, ix, e.WikiQueries())
	var eligible []queryCost
	for _, c := range cs {
		if c.patterns > 0 && c.trees <= maxTrees {
			eligible = append(eligible, c)
		}
	}
	const kMax = 100
	type perQuery struct {
		patternKeys []string // top-kMax pattern keys, ranked
		treePattern []string // pattern key of each top-kMax tree, ranked
	}
	var pqs []perQuery
	for _, c := range eligible {
		res := search.LETopK(ix, c.q.Text, search.Options{K: kMax, SkipTrees: true})
		trees, _ := search.TopTrees(ix, c.q.Text, kMax, search.Options{})
		var pq perQuery
		for _, rp := range res.Patterns {
			pq.patternKeys = append(pq.patternKeys, rp.Pattern.ContentKey(ix.PatternTable()))
		}
		for _, rt := range trees {
			pq.treePattern = append(pq.treePattern, rt.Pattern.ContentKey(ix.PatternTable()))
		}
		pqs = append(pqs, pq)
	}
	for k := 10; k <= kMax; k += 10 {
		var covSum, newSum float64
		n := 0
		for _, pq := range pqs {
			np := len(pq.patternKeys)
			if np > k {
				np = k
			}
			nt := len(pq.treePattern)
			if nt > k {
				nt = k
			}
			if np == 0 || nt == 0 {
				continue
			}
			topPat := map[string]bool{}
			for _, key := range pq.patternKeys[:np] {
				topPat[key] = true
			}
			covered := 0
			coveredPat := map[string]bool{}
			for _, key := range pq.treePattern[:nt] {
				if topPat[key] {
					covered++
					coveredPat[key] = true
				}
			}
			covSum += float64(covered) / float64(nt)
			newSum += float64(np-len(coveredPat)) / float64(np)
			n++
		}
		if n == 0 {
			continue
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f", 100*covSum/float64(n)),
			fmt.Sprintf("%.1f", 100*newSum/float64(n)),
		})
	}
	t.Notes = append(t.Notes,
		"coverage %: average fraction of the individual top-k subtrees whose pattern is among the top-k tree patterns",
		"new patterns %: average fraction of top-k tree patterns containing no individual top-k subtree")
	return t
}

// RunCaseStudy reproduces the Figures 14-15 case study: the top individual
// valid subtrees versus the top-1 tree pattern (table answer) for one
// query, showing why aggregated patterns answer "list of X" intents better.
func RunCaseStudy(e *Env, query string) string {
	ix := e.WikiIndex(3)
	var sb strings.Builder
	fmt.Fprintf(&sb, "== Case study (Figures 14-15): query %q ==\n\n", query)

	trees, _ := search.TopTrees(ix, query, 3, search.Options{})
	fmt.Fprintf(&sb, "-- Top individual valid subtrees (Figure 14 analogue) --\n")
	if len(trees) == 0 {
		sb.WriteString("(no valid subtrees)\n")
		return sb.String()
	}
	for i, rt := range trees {
		tab := core.ComposeTable(ix.Graph(), ix.PatternTable(), rt.Pattern, []core.Subtree{rt.Tree})
		fmt.Fprintf(&sb, "Top-%d (score %.4f)\n%s\n", i+1, rt.Score, tab.Render(1))
	}

	res := search.LETopK(ix, query, search.Options{K: 1, MaxTreesPerPattern: 10})
	fmt.Fprintf(&sb, "-- Top-1 tree pattern as table answer (Figure 15 analogue) --\n")
	if len(res.Patterns) == 0 {
		sb.WriteString("(no patterns)\n")
		return sb.String()
	}
	rp := res.Patterns[0]
	fmt.Fprintf(&sb, "score %.4f, %d rows\n%s\n", rp.Score, rp.Agg.Count, rp.Table(ix).Render(10))
	return sb.String()
}
