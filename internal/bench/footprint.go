package bench

import (
	"bytes"
	"fmt"
	"time"

	"kbtable/internal/index"
	"kbtable/internal/kg"
)

// IndexFootprintResult is one index_footprint row of BENCH_kbtable.json:
// the resident and on-disk cost of one corpus's index, with the legacy
// gob container measured alongside as the fixed baseline the v2 wire
// format is pinned against.
type IndexFootprintResult struct {
	Corpus  string `json:"corpus"`
	Entries int64  `json:"entries"`
	// ResidentBytes is the exact size of the columnar posting arenas;
	// BytesPerEntry is the same per posting.
	ResidentBytes int64   `json:"resident_bytes"`
	BytesPerEntry float64 `json:"bytes_per_entry"`
	// SnapshotBytes is the v2 container size; GobSnapshotBytes the
	// legacy container for the same index; ShrinkVsGob = 1 - v2/gob.
	SnapshotBytes    int64   `json:"snapshot_bytes"`
	GobSnapshotBytes int64   `json:"gob_snapshot_bytes"`
	ShrinkVsGob      float64 `json:"shrink_vs_gob"`
	// EncodeMs / DecodeMs time the v2 container; GobDecodeMs times a
	// load of the legacy container (best of three each).
	EncodeMs    float64 `json:"encode_ms"`
	DecodeMs    float64 `json:"decode_ms"`
	GobDecodeMs float64 `json:"gob_decode_ms"`
	// LoadSpeedupVsGob is GobDecodeMs / DecodeMs — the cold-start
	// improvement from the wire format alone.
	LoadSpeedupVsGob float64 `json:"load_speedup_vs_gob"`
	// BuildMs is the original index construction time;
	// LoadSpeedupVsBuild is BuildMs / DecodeMs (why snapshots exist).
	BuildMs            float64 `json:"build_ms"`
	LoadSpeedupVsBuild float64 `json:"load_speedup_vs_build"`
}

// bestOf runs f n times and returns the fastest wall-clock duration in
// milliseconds (the usual noise filter for sub-second one-shot costs).
func bestOf(n int, f func() error) (float64, error) {
	best := time.Duration(-1)
	for i := 0; i < n; i++ {
		t0 := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		if d := time.Since(t0); best < 0 || d < best {
			best = d
		}
	}
	return float64(best.Microseconds()) / 1000, nil
}

// IndexFootprint measures one corpus's footprint row from an
// already-built index. Exported for cmd/kbbench's -footprint mode
// (make bench-footprint), which runs it on corpora far larger than the
// checked-in ones.
func IndexFootprint(corpus string, g *kg.Graph, ix *index.Index) (IndexFootprintResult, error) {
	st := ix.Stats()
	out := IndexFootprintResult{
		Corpus:        corpus,
		Entries:       st.NumEntries,
		ResidentBytes: st.Bytes,
		BytesPerEntry: st.BytesPerEntry(),
		BuildMs:       float64(st.BuildTime.Microseconds()) / 1000,
	}

	var v2 bytes.Buffer
	encodeMs, err := bestOf(3, func() error {
		v2.Reset()
		return ix.Encode(&v2)
	})
	if err != nil {
		return out, fmt.Errorf("bench: %s footprint encode: %w", corpus, err)
	}
	out.EncodeMs = encodeMs
	out.SnapshotBytes = int64(v2.Len())

	var gob bytes.Buffer
	if err := ix.EncodeLegacyGob(&gob); err != nil {
		return out, fmt.Errorf("bench: %s footprint gob encode: %w", corpus, err)
	}
	out.GobSnapshotBytes = int64(gob.Len())
	if gob.Len() > 0 {
		out.ShrinkVsGob = 1 - float64(v2.Len())/float64(gob.Len())
	}

	out.DecodeMs, err = bestOf(3, func() error {
		_, err := index.Load(bytes.NewReader(v2.Bytes()), g)
		return err
	})
	if err != nil {
		return out, fmt.Errorf("bench: %s footprint decode: %w", corpus, err)
	}
	out.GobDecodeMs, err = bestOf(3, func() error {
		_, err := index.Load(bytes.NewReader(gob.Bytes()), g)
		return err
	})
	if err != nil {
		return out, fmt.Errorf("bench: %s footprint gob decode: %w", corpus, err)
	}
	if out.DecodeMs > 0 {
		out.LoadSpeedupVsGob = out.GobDecodeMs / out.DecodeMs
		out.LoadSpeedupVsBuild = out.BuildMs / out.DecodeMs
	}
	return out, nil
}
