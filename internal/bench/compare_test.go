package bench

import (
	"strings"
	"testing"
	"time"
)

func baseReport() *ShardBenchReport {
	return &ShardBenchReport{
		Results: []ShardBenchResult{
			{Name: "shards-1", NsPerOp: 1000},
			{Name: "shards-2", NsPerOp: 600},
		},
		Planner: []PlannerBenchResult{
			{Corpus: "wiki", Algo: "auto", NsPerOp: 500},
		},
		Streaming: []StreamingBenchResult{
			{Algo: "pe", Mode: "staged", NsPerOp: 800, AllocsPerOp: 4000},
			{Algo: "pe", Mode: "streaming", NsPerOp: 500, AllocsPerOp: 2000},
		},
		ColdStart: &ColdStartBenchResult{LoadMs: 100},
		ServeLatency: []ServeLatencyResult{
			{Op: "search", ThroughputRPS: 1000, P99MS: 10},
			{Op: "update", ThroughputRPS: 200, P99MS: 20},
		},
		GroupCommit: &GroupCommitResult{UpdateThroughputRPS: 200},
	}
}

func TestCompareReportsNoRegression(t *testing.T) {
	old, cur := baseReport(), baseReport()
	// Within threshold: 20% slower ns/op, 20% lower throughput.
	cur.Results[0].NsPerOp = 1200
	cur.ServeLatency[0].ThroughputRPS = 850
	if regs := CompareReports(old, cur, 0.25); len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
}

func TestCompareReportsFlagsRegressions(t *testing.T) {
	old, cur := baseReport(), baseReport()
	cur.Results[1].NsPerOp = 1000            // 1.67x slower
	cur.ServeLatency[0].ThroughputRPS = 500  // half the search rps
	cur.GroupCommit.UpdateThroughputRPS = 50 // quarter the update rps
	regs := CompareReports(old, cur, 0.25)
	if len(regs) != 3 {
		t.Fatalf("want 3 regressions, got %d: %v", len(regs), regs)
	}
	want := []string{"shard shards-2", "serve search", "group-commit"}
	for i, w := range want {
		if !strings.HasPrefix(regs[i].String(), w) {
			t.Errorf("regression %d = %q, want prefix %q", i, regs[i], w)
		}
		if regs[i].Ratio <= 1.25 {
			t.Errorf("regression %d ratio %.2f not above threshold", i, regs[i].Ratio)
		}
	}
}

func TestCompareReportsSkipsUnmatchedRows(t *testing.T) {
	old, cur := baseReport(), baseReport()
	// New row absent from the baseline, baseline row gone from new, and a
	// baseline with no serve rows at all: none of these may fire.
	cur.Results = append(cur.Results, ShardBenchResult{Name: "shards-4", NsPerOp: 999999})
	old.Results = old.Results[:1]
	old.ServeLatency = nil
	old.GroupCommit = nil
	cur.ServeLatency[1].ThroughputRPS = 1 // would regress if matched
	if regs := CompareReports(old, cur, 0.25); len(regs) != 0 {
		t.Fatalf("unmatched rows must not gate: %v", regs)
	}
}

func TestCompareReportsStreamingRegression(t *testing.T) {
	old, cur := baseReport(), baseReport()
	cur.Streaming[1].NsPerOp = 800      // streaming row lost its speed edge
	cur.Streaming[1].AllocsPerOp = 3500 // and most of its allocation win
	regs := CompareReports(old, cur, 0.25)
	if len(regs) != 2 {
		t.Fatalf("want ns/op + allocs/op streaming regressions, got %v", regs)
	}
	for _, r := range regs {
		if !strings.HasPrefix(r.String(), "streaming pe/streaming") {
			t.Errorf("regression %q not attributed to the streaming row", r)
		}
	}
}

func TestCompareReportsLatencyRegression(t *testing.T) {
	old, cur := baseReport(), baseReport()
	cur.ServeLatency[1].P99MS = 100 // 5x the update p99
	regs := CompareReports(old, cur, 0.25)
	if len(regs) != 1 || regs[0].Metric != "p99_ms" {
		t.Fatalf("want one p99_ms regression, got %v", regs)
	}
}

func TestPercentiles(t *testing.T) {
	samples := make([]time.Duration, 1000)
	for i := range samples {
		samples[i] = time.Duration(i+1) * time.Millisecond
	}
	st := Percentiles("search", samples, 10*time.Second, 3, 7)
	if st.Requests != 1000 || st.Errors != 3 || st.Shed != 7 {
		t.Fatalf("counts wrong: %+v", st)
	}
	if st.ThroughputRPS != 100 {
		t.Fatalf("throughput = %v, want 100", st.ThroughputRPS)
	}
	if st.P50MS < 490 || st.P50MS > 510 {
		t.Fatalf("p50 = %vms, want ~500", st.P50MS)
	}
	if st.P99MS < 980 || st.P99MS > 1000 {
		t.Fatalf("p99 = %vms, want ~990", st.P99MS)
	}
	if st.MaxMS != 1000 {
		t.Fatalf("max = %vms, want 1000", st.MaxMS)
	}
}

func TestAttachLoadReport(t *testing.T) {
	r := &ShardBenchReport{}
	lr := &LoadReport{
		Ops: []LoadOpStats{
			{Op: "search", Requests: 900, ThroughputRPS: 450, P50MS: 1, P99MS: 8, P999MS: 15},
			{Op: "update", Requests: 100, ThroughputRPS: 50, P50MS: 2, P99MS: 12, P999MS: 30},
		},
		Server: &LoadServerCounters{
			GroupCommitBatches: 25, GroupCommitRecords: 100,
			GroupCommitAvgBatch: 4, GroupCommitMaxBatch: 8,
		},
	}
	r.AttachLoadReport(lr)
	if len(r.ServeLatency) != 2 {
		t.Fatalf("want 2 serve_latency rows, got %d", len(r.ServeLatency))
	}
	if r.ServeLatency[0].Op != "search" || r.ServeLatency[0].P999MS != 15 {
		t.Fatalf("search row wrong: %+v", r.ServeLatency[0])
	}
	gc := r.GroupCommit
	if gc == nil || gc.Batches != 25 || gc.AvgBatch != 4 || gc.UpdateThroughputRPS != 50 {
		t.Fatalf("group_commit row wrong: %+v", gc)
	}
}
