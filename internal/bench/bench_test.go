package bench

import (
	"strings"
	"testing"
)

// tinyEnv keeps unit tests fast; the real scales run via cmd/kbbench and
// the root bench_test.go benchmarks.
func tinyEnv() *Env {
	return NewEnv(Config{
		WikiEntities: 900,
		WikiTypes:    30,
		IMDBMovies:   300,
		PerM:         3,
		MaxM:         4,
		K:            10,
		Ds:           []int{2, 3},
	})
}

func TestRunFig6(t *testing.T) {
	tab := RunFig6(tinyEnv())
	if len(tab.Rows) != 2 {
		t.Fatalf("want one row per d, got %d", len(tab.Rows))
	}
	if tab.Rows[0][0] != "2" || tab.Rows[1][0] != "3" {
		t.Errorf("d column wrong: %v", tab.Rows)
	}
	// Entries must be monotone in d.
	if tab.Rows[0][3] >= tab.Rows[1][3] && len(tab.Rows[0][3]) >= len(tab.Rows[1][3]) {
		t.Errorf("entries should grow with d: %v vs %v", tab.Rows[0][3], tab.Rows[1][3])
	}
	out := tab.String()
	if !strings.Contains(out, "Figure 6") || !strings.Contains(out, "note:") {
		t.Errorf("rendering incomplete:\n%s", out)
	}
}

func TestRunFig7And9Buckets(t *testing.T) {
	e := tinyEnv()
	tabs := RunFig7(e)
	if len(tabs) != 2 {
		t.Fatalf("want 2 tables (d=2,3), got %d", len(tabs))
	}
	for _, tab := range tabs {
		if len(tab.Rows) == 0 {
			t.Errorf("%s has no buckets — workload has no answerable queries", tab.Title)
		}
		for _, row := range tab.Rows {
			if !strings.HasPrefix(row[0], "10^") {
				t.Errorf("bucket label %q", row[0])
			}
		}
	}
	t9 := RunFig9(e)
	if len(t9) != 2 {
		t.Fatalf("Fig9 should give Wiki and IMDB tables")
	}
	if len(t9[0].Rows) == 0 {
		t.Errorf("Fig9(a) empty")
	}
}

func TestRunFig8(t *testing.T) {
	tab := RunFig8(tinyEnv())
	if len(tab.Rows) == 0 {
		t.Errorf("Fig8 should have at least one bucket")
	}
}

func TestRunFig10(t *testing.T) {
	e := tinyEnv()
	tab := RunFig10(e)
	if len(tab.Rows) != 10 {
		t.Fatalf("want 10 rows (10%%..100%%), got %d", len(tab.Rows))
	}
	if tab.Rows[0][0] != "10%" || tab.Rows[9][0] != "100%" {
		t.Errorf("percent labels wrong: %v", tab.Rows)
	}
}

func TestRunExpK(t *testing.T) {
	tab := RunExpK(tinyEnv())
	if len(tab.Rows) != 4 {
		t.Fatalf("want rows for k=1,10,100,1000; got %d", len(tab.Rows))
	}
}

func TestRunFig11And12(t *testing.T) {
	e := tinyEnv()
	tabs := RunFig11(e)
	if len(tabs) != 2 {
		t.Fatalf("Fig11 should give time and precision tables")
	}
	if len(tabs[0].Rows) != 6 {
		t.Errorf("Λ sweep should have 6 rows, got %d", len(tabs[0].Rows))
	}
	// Precision cells parse as numbers in [0,1].
	for _, row := range tabs[1].Rows {
		for _, cell := range row[1:] {
			if !(cell >= "0" && cell <= "2") {
				t.Errorf("precision cell %q", cell)
			}
		}
	}
	t12 := RunFig12(e)
	if len(t12) != 2 || len(t12[0].Rows) != 7 {
		t.Fatalf("Fig12 shape wrong")
	}
	// ρ=1.00 row must have precision 1.00 everywhere (no sampling).
	last := t12[1].Rows[len(t12[1].Rows)-1]
	if last[0] != "1.00" {
		t.Fatalf("last row should be ρ=1.00, got %v", last)
	}
	for _, cell := range last[1:] {
		if cell != "1.00" {
			t.Errorf("ρ=1 precision must be 1.00, got %q", cell)
		}
	}
}

func TestRunFig13(t *testing.T) {
	tab := RunFig13(tinyEnv())
	if len(tab.Rows) == 0 {
		t.Fatalf("Fig13 has no rows")
	}
	for _, row := range tab.Rows {
		if len(row) != 4 {
			t.Errorf("row shape wrong: %v", row)
		}
	}
}

func TestRunCaseStudy(t *testing.T) {
	out := RunCaseStudy(tinyEnv(), "city company")
	if !strings.Contains(out, "Top individual valid subtrees") {
		t.Errorf("case study missing individual section:\n%s", out)
	}
	if !strings.Contains(out, "tree pattern as table answer") {
		t.Errorf("case study missing pattern section:\n%s", out)
	}
}

func TestRunFig16(t *testing.T) {
	e := tinyEnv()
	tab := RunFig16(e)
	if len(tab.Rows) == 0 {
		t.Fatalf("Fig16 empty")
	}
	for _, row := range tab.Rows {
		m := row[0]
		if m < "1" || m > "9" {
			t.Errorf("m label %q", m)
		}
	}
}

func TestBucketOf(t *testing.T) {
	cases := map[int64]int64{0: 0, 1: 10, 9: 10, 10: 100, 99: 100, 100: 1000, 1234: 10000}
	for n, want := range cases {
		if got := bucketOf(n); got != want {
			t.Errorf("bucketOf(%d) = %d, want %d", n, got, want)
		}
	}
	if bucketLabel(10) != "10^1" || bucketLabel(100000) != "10^5" {
		t.Errorf("bucketLabel wrong")
	}
}

func TestTimingFormat(t *testing.T) {
	var tm timing
	if tm.minGeoMax() != "-" {
		t.Errorf("empty timing should render '-'")
	}
	if fmtMs(0.5) != "0.50ms" || fmtMs(5) != "5.0ms" || fmtMs(50) != "50ms" || fmtMs(5000) != "5.0s" {
		t.Errorf("fmtMs wrong: %s %s %s %s", fmtMs(0.5), fmtMs(5), fmtMs(50), fmtMs(5000))
	}
}

func TestRunAblations(t *testing.T) {
	tabs := RunAblations(tinyEnv())
	if len(tabs) != 3 {
		t.Fatalf("want 3 ablation tables, got %d", len(tabs))
	}
	if len(tabs[0].Rows) != 2 {
		t.Errorf("tree-shape ablation should have 2 rows")
	}
	if len(tabs[1].Rows) != 4 {
		t.Errorf("aggregation ablation should have 4 rows")
	}
	// Sum row overlaps 100% with itself.
	if tabs[1].Rows[0][2] != "1.00" {
		t.Errorf("sum vs sum overlap must be 1.00, got %q", tabs[1].Rows[0][2])
	}
	// Strict filtering cannot find more subtrees than tuple semantics.
	if tabs[0].Rows[1][2] > tabs[0].Rows[0][2] && len(tabs[0].Rows[1][2]) >= len(tabs[0].Rows[0][2]) {
		t.Errorf("strict mode found more subtrees than tuples: %v vs %v", tabs[0].Rows[1][2], tabs[0].Rows[0][2])
	}
}
