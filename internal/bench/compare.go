package bench

import (
	"encoding/json"
	"fmt"
	"os"
)

// Bench-regression gate: CompareReports diffs two BENCH_kbtable.json
// files row by row and flags every pinned metric that regressed past
// the threshold. "Pinned" rows are matched by identity (config name,
// corpus × algo, serve op) — a row present only on one side is skipped,
// so adding a new benchmark never fails the gate retroactively.

// DefaultRegressionThreshold is the fractional slowdown that fails the
// gate: 0.25 = new must stay within 125% of old cost (or 75% of old
// throughput).
const DefaultRegressionThreshold = 0.25

// Regression is one gate violation.
type Regression struct {
	// Row names the compared entity; Metric the compared number.
	Row    string
	Metric string
	// Old and New are the compared values; Ratio is the slowdown factor
	// (always > 1+threshold when reported).
	Old, New, Ratio float64
}

func (r Regression) String() string {
	return fmt.Sprintf("%s %s regressed %.2fx (%.4g -> %.4g)", r.Row, r.Metric, r.Ratio, r.Old, r.New)
}

// ReadShardBenchReport loads a BENCH_kbtable.json from disk.
func ReadShardBenchReport(path string) (*ShardBenchReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r ShardBenchReport
	if err := json.NewDecoder(f).Decode(&r); err != nil {
		return nil, fmt.Errorf("bench: parse report %s: %w", path, err)
	}
	return &r, nil
}

// CompareReports returns every pinned row of new that regressed more
// than threshold versus old. Cost metrics (ns/op, latency) regress by
// growing, throughput metrics by shrinking; both are reported as a
// slowdown ratio > 1.
func CompareReports(old, new *ShardBenchReport, threshold float64) []Regression {
	if threshold <= 0 {
		threshold = DefaultRegressionThreshold
	}
	var out []Regression
	check := func(row, metric string, oldV, newV float64, higherIsWorse bool) {
		if oldV <= 0 || newV <= 0 {
			return // absent or degenerate on one side: not comparable
		}
		ratio := newV / oldV
		if !higherIsWorse {
			ratio = oldV / newV
		}
		if ratio > 1+threshold {
			out = append(out, Regression{Row: row, Metric: metric, Old: oldV, New: newV, Ratio: ratio})
		}
	}

	oldShard := map[string]ShardBenchResult{}
	for _, r := range old.Results {
		oldShard[r.Name] = r
	}
	for _, n := range new.Results {
		if o, ok := oldShard[n.Name]; ok {
			check("shard "+n.Name, "ns/op", float64(o.NsPerOp), float64(n.NsPerOp), true)
		}
	}

	oldPlanner := map[string]PlannerBenchResult{}
	for _, r := range old.Planner {
		oldPlanner[r.Corpus+"/"+r.Algo] = r
	}
	for _, n := range new.Planner {
		if o, ok := oldPlanner[n.Corpus+"/"+n.Algo]; ok {
			check("planner "+n.Corpus+"/"+n.Algo, "ns/op", float64(o.NsPerOp), float64(n.NsPerOp), true)
		}
	}

	oldStreaming := map[string]StreamingBenchResult{}
	for _, r := range old.Streaming {
		oldStreaming[r.Algo+"/"+r.Mode] = r
	}
	for _, n := range new.Streaming {
		if o, ok := oldStreaming[n.Algo+"/"+n.Mode]; ok {
			check("streaming "+n.Algo+"/"+n.Mode, "ns/op", float64(o.NsPerOp), float64(n.NsPerOp), true)
			check("streaming "+n.Algo+"/"+n.Mode, "allocs/op", float64(o.AllocsPerOp), float64(n.AllocsPerOp), true)
		}
	}

	oldPC := map[string]PlanCacheBenchResult{}
	for _, r := range old.PlanCache {
		oldPC[r.Mode] = r
	}
	for _, n := range new.PlanCache {
		if o, ok := oldPC[n.Mode]; ok {
			check("plan-cache "+n.Mode, "ns/op", float64(o.NsPerOp), float64(n.NsPerOp), true)
		}
	}

	if old.ColdStart != nil && new.ColdStart != nil {
		check("cold-start", "load_ms", old.ColdStart.LoadMs, new.ColdStart.LoadMs, true)
	}

	oldFP := map[string]IndexFootprintResult{}
	for _, r := range old.Footprint {
		oldFP[r.Corpus] = r
	}
	for _, n := range new.Footprint {
		if o, ok := oldFP[n.Corpus]; ok {
			check("footprint "+n.Corpus, "bytes_per_entry", o.BytesPerEntry, n.BytesPerEntry, true)
			check("footprint "+n.Corpus, "snapshot_bytes", float64(o.SnapshotBytes), float64(n.SnapshotBytes), true)
			check("footprint "+n.Corpus, "encode_ms", o.EncodeMs, n.EncodeMs, true)
			check("footprint "+n.Corpus, "decode_ms", o.DecodeMs, n.DecodeMs, true)
			check("footprint "+n.Corpus, "load_speedup_vs_gob", o.LoadSpeedupVsGob, n.LoadSpeedupVsGob, false)
		}
	}

	oldServe := map[string]ServeLatencyResult{}
	for _, r := range old.ServeLatency {
		oldServe[r.Op] = r
	}
	for _, n := range new.ServeLatency {
		if o, ok := oldServe[n.Op]; ok {
			check("serve "+n.Op, "throughput_rps", o.ThroughputRPS, n.ThroughputRPS, false)
			check("serve "+n.Op, "p99_ms", o.P99MS, n.P99MS, true)
		}
	}

	if old.GroupCommit != nil && new.GroupCommit != nil {
		check("group-commit", "update_throughput_rps",
			old.GroupCommit.UpdateThroughputRPS, new.GroupCommit.UpdateThroughputRPS, false)
	}
	return out
}
