package bench

import (
	"fmt"

	"kbtable/internal/core"
	"kbtable/internal/search"
)

// RunAblations reports the effect of the design choices DESIGN.md calls
// out, beyond what the paper itself measured:
//
//   - tuple semantics vs strict tree-shape filtering (how many "subtrees"
//     are re-converging tuples, and what filtering costs);
//   - the four pattern-score aggregation functions (how much the ranking
//     changes, and that runtime does not);
//   - PETopK's empty-combination pruning (combinations checked vs found).
func RunAblations(e *Env) []Table {
	ix := e.WikiIndex(3)
	cs := costs(e, ix, e.WikiQueries())
	var qs []queryCost
	for _, c := range cs {
		if !c.exceeded && c.patterns > 0 {
			qs = append(qs, c)
			if len(qs) == 30 {
				break
			}
		}
	}

	// (1) Tree-shape filtering.
	shape := Table{
		Title:  "Ablation: tuple semantics vs strict tree-shape filtering (LETopK, 30 queries)",
		Header: []string{"mode", "geo time (ms)", "total subtrees", "total patterns"},
	}
	for _, strict := range []bool{false, true} {
		var tm timing
		var trees int64
		patterns := 0
		for _, c := range qs {
			res := search.LETopK(ix, c.q.Text, search.Options{K: e.Cfg.K, SkipTrees: true, RequireTreeShape: strict})
			tm.add(res.Stats.Elapsed)
			trees += res.Stats.TreesFound
			patterns += res.Stats.PatternsFound
		}
		mode := "tuples (paper)"
		if strict {
			mode = "strict trees"
		}
		shape.Rows = append(shape.Rows, []string{
			mode, fmt.Sprintf("%.2f", tm.geoMs()), fmt.Sprintf("%d", trees), fmt.Sprintf("%d", patterns),
		})
	}
	shape.Notes = append(shape.Notes,
		"strict mode drops path tuples whose union re-converges (diamonds); the gap shows how many of the paper's counted subtrees are such tuples")

	// (2) Aggregation functions.
	agg := Table{
		Title:  "Ablation: pattern-score aggregation functions (PETopK, 30 queries)",
		Header: []string{"agg", "geo time (ms)", "top-10 overlap with sum"},
	}
	baseline := map[string][]string{}
	for _, c := range qs {
		res := search.PETopK(ix, c.q.Text, search.Options{K: 10, SkipTrees: true, Agg: core.AggSum})
		var keys []string
		for _, rp := range res.Patterns {
			keys = append(keys, rp.Pattern.ContentKey(ix.PatternTable()))
		}
		baseline[c.q.Text] = keys
	}
	for _, a := range []core.Agg{core.AggSum, core.AggCount, core.AggAvg, core.AggMax} {
		var tm timing
		overlapSum, overlapN := 0.0, 0
		for _, c := range qs {
			res := search.PETopK(ix, c.q.Text, search.Options{K: 10, SkipTrees: true, Agg: a})
			tm.add(res.Stats.Elapsed)
			base := baseline[c.q.Text]
			if len(base) == 0 {
				continue
			}
			set := map[string]bool{}
			for _, k := range base {
				set[k] = true
			}
			hit := 0
			for _, rp := range res.Patterns {
				if set[rp.Pattern.ContentKey(ix.PatternTable())] {
					hit++
				}
			}
			overlapSum += float64(hit) / float64(len(base))
			overlapN++
		}
		overlap := 1.0
		if overlapN > 0 {
			overlap = overlapSum / float64(overlapN)
		}
		agg.Rows = append(agg.Rows, []string{
			a.String(), fmt.Sprintf("%.2f", tm.geoMs()), fmt.Sprintf("%.2f", overlap),
		})
	}
	agg.Notes = append(agg.Notes,
		"sum and count favor subtree-rich patterns; avg and max favor individually strong subtrees — runtime is agg-independent (Section 2.2.3)")

	// (3) PETopK empty-combination accounting.
	prune := Table{
		Title:  "Ablation: PETopK combination pruning (30 queries)",
		Header: []string{"metric", "total"},
	}
	var found, empty int64
	for _, c := range qs {
		res := search.PETopK(ix, c.q.Text, search.Options{K: e.Cfg.K, SkipTrees: true})
		found += int64(res.Stats.PatternsFound)
		empty += res.Stats.EmptyChecked
	}
	prune.Rows = append(prune.Rows,
		[]string{"non-empty patterns scored", fmt.Sprintf("%d", found)},
		[]string{"empty prefixes pruned", fmt.Sprintf("%d", empty)},
	)
	prune.Notes = append(prune.Notes,
		"each pruned prefix cuts an entire subtree of the combination product — the wasted set-intersections of Section 4.1's worst case")

	return []Table{shape, agg, prune}
}
