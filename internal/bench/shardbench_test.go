package bench

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestRunShardBench smoke-tests the BENCH trajectory at tiny scale: every
// configured width is measured, the serial reference anchors speedup at 1,
// and the JSON report round-trips.
func TestRunShardBench(t *testing.T) {
	report, err := RunShardBench(ShardBenchConfig{
		Entities: 300, Types: 10, Movies: 60, Queries: 3, K: 5, Shards: []int{1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Results) != 3 {
		t.Fatalf("got %d results, want serial + 2 shard widths", len(report.Results))
	}
	if report.Results[0].Name != "serial" || report.Results[0].SpeedupVsSerial != 1 {
		t.Fatalf("serial reference malformed: %+v", report.Results[0])
	}
	for _, r := range report.Results {
		if r.NsPerOp <= 0 || r.AllocsPerOp <= 0 || r.SpeedupVsSerial <= 0 {
			t.Fatalf("unmeasured config: %+v", r)
		}
	}
	if len(report.Planner) != 6 {
		t.Fatalf("got %d planner rows, want 2 corpora x 3 algorithms", len(report.Planner))
	}
	for _, p := range report.Planner {
		if p.NsPerOp <= 0 || p.SpeedupVsPE <= 0 {
			t.Fatalf("unmeasured planner row: %+v", p)
		}
		if p.Algo == "auto" && p.ChosePE+p.ChoseLE != 3 {
			t.Fatalf("auto row decisions don't cover the workload: %+v", p)
		}
	}

	if len(report.Streaming) != 4 {
		t.Fatalf("got %d streaming rows, want 2 algorithms x 2 modes", len(report.Streaming))
	}
	for i, s := range report.Streaming {
		if s.NsPerOp <= 0 || s.AllocsPerOp <= 0 || s.SpeedupVsStaged <= 0 {
			t.Fatalf("unmeasured streaming row: %+v", s)
		}
		if s.Mode == "staged" && (s.SpeedupVsStaged != 1 || s.AllocReductionVsStaged != 0) {
			t.Fatalf("staged reference row %d malformed: %+v", i, s)
		}
	}

	if n := len(report.PlanCache); n != 3 {
		t.Fatalf("got %d plan-cache rows, want cold+cached+prepared", n)
	}
	for _, p := range report.PlanCache {
		if p.NsPerOp <= 0 || p.SpeedupVsCold <= 0 {
			t.Fatalf("unmeasured plan-cache row: %+v", p)
		}
		switch p.Mode {
		case "cold":
			if p.SpeedupVsCold != 1 {
				t.Fatalf("cold reference row malformed: %+v", p)
			}
		case "cached":
			if p.HitRate != 1 {
				t.Fatalf("warmed plan cache should hit every lookup: %+v", p)
			}
		case "prepared":
		default:
			t.Fatalf("unknown plan-cache mode: %+v", p)
		}
	}

	var buf bytes.Buffer
	if err := report.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back ShardBenchReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != len(report.Results) || back.Results[2].Shards != 2 {
		t.Fatalf("JSON round-trip lost data: %+v", back)
	}
	if report.String() == "" {
		t.Fatal("empty human-readable report")
	}
}
