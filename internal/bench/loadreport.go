package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"
)

// LoadReport is the JSON schema cmd/kbload emits and cmd/kbbench
// -load-report ingests: throughput and latency percentiles per op type
// for one mixed search/update soak against a live kbserve, plus the
// server-side counter deltas (coalescing, shedding, WAL group commit)
// scraped from /healthz around the run.
type LoadReport struct {
	// Target is the kbserve base URL the soak drove.
	Target string `json:"target"`
	// DurationSec / Concurrency / ReadRatio echo the soak parameters.
	DurationSec float64 `json:"duration_sec"`
	Concurrency int     `json:"concurrency"`
	ReadRatio   float64 `json:"read_ratio"`
	// Ops holds one row per op type ("search", "update").
	Ops []LoadOpStats `json:"ops"`
	// Server is the /healthz counter delta across the soak (nil when the
	// endpoint could not be scraped).
	Server *LoadServerCounters `json:"server,omitempty"`
}

// LoadOpStats is the client-observed throughput + latency distribution
// of one op type.
type LoadOpStats struct {
	// Op is "search" or "update".
	Op string `json:"op"`
	// Requests counts completed requests; Errors the non-2xx responses
	// that were not load shedding; Shed the 429 rejections.
	Requests uint64 `json:"requests"`
	Errors   uint64 `json:"errors"`
	Shed     uint64 `json:"shed"`
	// Coalesced / CacheHits count search responses flagged as shared
	// with another execution / served from the result cache.
	Coalesced uint64 `json:"coalesced,omitempty"`
	CacheHits uint64 `json:"cache_hits,omitempty"`
	// ThroughputRPS is Requests / wall-clock seconds.
	ThroughputRPS float64 `json:"throughput_rps"`
	// Latency percentiles over completed requests, in milliseconds.
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	P999MS float64 `json:"p999_ms"`
	MaxMS  float64 `json:"max_ms"`
	MeanMS float64 `json:"mean_ms"`
}

// LoadServerCounters is the server-side view of the same soak: the
// /healthz counter deltas between start and end.
type LoadServerCounters struct {
	Coalesced        uint64 `json:"coalesced"`
	ShedQueueFull    uint64 `json:"shed_queue_full"`
	ShedQueueTimeout uint64 `json:"shed_queue_timeout"`
	// WAL group commit: fsync batches, records they covered, average and
	// largest batch (0 when the server runs without -data-dir).
	GroupCommitBatches  uint64  `json:"group_commit_batches"`
	GroupCommitRecords  uint64  `json:"group_commit_records"`
	GroupCommitAvgBatch float64 `json:"group_commit_avg_batch"`
	GroupCommitMaxBatch int     `json:"group_commit_max_batch"`
	// WALSeq / Epoch are the end-of-soak absolute values, a consistency
	// anchor: every acked update must be ≤ WALSeq.
	WALSeq uint64 `json:"wal_seq"`
	Epoch  uint64 `json:"epoch"`
}

// Percentiles computes the latency distribution of one op from its raw
// samples (sorted in place).
func Percentiles(op string, samples []time.Duration, wall time.Duration, errors, shed uint64) LoadOpStats {
	st := LoadOpStats{Op: op, Requests: uint64(len(samples)), Errors: errors, Shed: shed}
	if wall > 0 {
		st.ThroughputRPS = float64(len(samples)) / wall.Seconds()
	}
	if len(samples) == 0 {
		return st
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(samples)-1))
		return samples[i]
	}
	var sum time.Duration
	for _, d := range samples {
		sum += d
	}
	st.P50MS = ms(pct(0.50))
	st.P90MS = ms(pct(0.90))
	st.P99MS = ms(pct(0.99))
	st.P999MS = ms(pct(0.999))
	st.MaxMS = ms(samples[len(samples)-1])
	st.MeanMS = ms(sum / time.Duration(len(samples)))
	return st
}

// ReadLoadReport loads a kbload JSON report from disk.
func ReadLoadReport(path string) (*LoadReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r LoadReport
	if err := json.NewDecoder(f).Decode(&r); err != nil {
		return nil, fmt.Errorf("bench: parse load report %s: %w", path, err)
	}
	return &r, nil
}

// WriteJSON emits the report as indented JSON.
func (r *LoadReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// String renders the report as a human-readable table.
func (r *LoadReport) String() string {
	t := Table{
		Title: fmt.Sprintf("Serve soak — %s, %.0fs, %d workers, read ratio %.2f",
			r.Target, r.DurationSec, r.Concurrency, r.ReadRatio),
		Header: []string{"op", "requests", "errors", "shed", "rps", "p50", "p99", "p99.9", "max"},
	}
	for _, op := range r.Ops {
		t.Rows = append(t.Rows, []string{
			op.Op,
			fmt.Sprintf("%d", op.Requests),
			fmt.Sprintf("%d", op.Errors),
			fmt.Sprintf("%d", op.Shed),
			fmt.Sprintf("%.0f", op.ThroughputRPS),
			fmtMs(op.P50MS), fmtMs(op.P99MS), fmtMs(op.P999MS), fmtMs(op.MaxMS),
		})
	}
	if s := r.Server; s != nil {
		t.Notes = append(t.Notes, fmt.Sprintf("server: %d coalesced, %d+%d shed (full+timeout)",
			s.Coalesced, s.ShedQueueFull, s.ShedQueueTimeout))
		if s.GroupCommitBatches > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf("group commit: %d records in %d fsyncs (avg %.2f, max %d)",
				s.GroupCommitRecords, s.GroupCommitBatches, s.GroupCommitAvgBatch, s.GroupCommitMaxBatch))
		}
	}
	return t.String()
}

// ServeLatencyResult is one serve_latency row of BENCH_kbtable.json,
// distilled from a kbload report: the latency record of the serving
// path under mixed load.
type ServeLatencyResult struct {
	Op            string  `json:"op"`
	Requests      uint64  `json:"requests"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50MS         float64 `json:"p50_ms"`
	P99MS         float64 `json:"p99_ms"`
	P999MS        float64 `json:"p999_ms"`
}

// GroupCommitResult is the group_commit row of BENCH_kbtable.json: the
// WAL batching achieved during the soak.
type GroupCommitResult struct {
	Batches  uint64  `json:"batches"`
	Records  uint64  `json:"records"`
	AvgBatch float64 `json:"avg_batch"`
	MaxBatch int     `json:"max_batch"`
	// UpdateThroughputRPS is the client-observed durable update
	// throughput the batching sustained.
	UpdateThroughputRPS float64 `json:"update_throughput_rps"`
}

// AttachLoadReport grafts a kbload soak onto the BENCH report as
// serve_latency and group_commit rows.
func (r *ShardBenchReport) AttachLoadReport(lr *LoadReport) {
	for _, op := range lr.Ops {
		r.ServeLatency = append(r.ServeLatency, ServeLatencyResult{
			Op:            op.Op,
			Requests:      op.Requests,
			ThroughputRPS: op.ThroughputRPS,
			P50MS:         op.P50MS,
			P99MS:         op.P99MS,
			P999MS:        op.P999MS,
		})
		if op.Op == "update" && lr.Server != nil && lr.Server.GroupCommitBatches > 0 {
			r.GroupCommit = &GroupCommitResult{
				Batches:             lr.Server.GroupCommitBatches,
				Records:             lr.Server.GroupCommitRecords,
				AvgBatch:            lr.Server.GroupCommitAvgBatch,
				MaxBatch:            lr.Server.GroupCommitMaxBatch,
				UpdateThroughputRPS: op.ThroughputRPS,
			}
		}
	}
}
