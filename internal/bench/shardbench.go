package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"testing"

	"kbtable/internal/dataset"
	"kbtable/internal/index"
	"kbtable/internal/kg"
	"kbtable/internal/search"
	"kbtable/internal/shard"
	"math"
)

// ShardBenchConfig scales the shard-scaling benchmark (the BENCH
// trajectory emitted as BENCH_kbtable.json).
type ShardBenchConfig struct {
	// Entities / Types scale the SynthWiki corpus; defaults 4000 / 60.
	Entities int
	Types    int
	// Movies scales the SynthIMDB corpus of the planner ablation;
	// default 1200.
	Movies int
	// Queries is the number of workload queries; default 12.
	Queries int
	// K is the top-k cutoff; default 10.
	K int
	// Shards are the partition widths measured; default {1, 2, 4}.
	Shards []int
	// Seed fixes dataset and workload; default 1.
	Seed int64
}

func (c ShardBenchConfig) withDefaults() ShardBenchConfig {
	if c.Entities == 0 {
		c.Entities = 4000
	}
	if c.Types == 0 {
		c.Types = 60
	}
	if c.Movies == 0 {
		c.Movies = 1200
	}
	if c.Queries == 0 {
		c.Queries = 12
	}
	if c.K == 0 {
		c.K = 10
	}
	if len(c.Shards) == 0 {
		c.Shards = []int{1, 2, 4}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ShardBenchResult is one measured configuration.
type ShardBenchResult struct {
	// Name identifies the configuration ("serial" or "shards-N").
	Name string `json:"name"`
	// Shards is 0 for the unsharded serial reference.
	Shards int `json:"shards"`
	// NsPerOp / BytesPerOp / AllocsPerOp are per benchmark op; one op
	// answers the whole query workload once (PATTERNENUM, top-K).
	NsPerOp     int64 `json:"ns_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	// SpeedupVsSerial is serial ns/op divided by this configuration's.
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
}

// PlannerBenchResult is one planner-ablation row: a corpus × algorithm
// cell of the PE vs LE vs Auto comparison.
type PlannerBenchResult struct {
	// Corpus is "wiki" or "imdb".
	Corpus string `json:"corpus"`
	// Algo is "pe", "le" or "auto".
	Algo string `json:"algo"`
	// NsPerOp answers the corpus's whole query workload once.
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	// SpeedupVsPE is the pe row's ns/op divided by this row's.
	SpeedupVsPE float64 `json:"speedup_vs_pe"`
	// ChosePE / ChoseLE split the planner's per-query decisions across
	// the workload (auto rows only).
	ChosePE int `json:"chose_pe,omitempty"`
	ChoseLE int `json:"chose_le,omitempty"`
}

// StreamingBenchResult is one streaming-executor ablation row: a
// (algorithm, mode) cell comparing the streaming default against the
// staged baseline (Options.Staged) on the wiki workload, serial, with
// tree materialization off — the enumerate+aggregate path the streaming
// rewrite targets.
type StreamingBenchResult struct {
	// Algo is "pe" or "le".
	Algo string `json:"algo"`
	// Mode is "staged" (the ablation baseline) or "streaming".
	Mode string `json:"mode"`
	// NsPerOp answers the whole query workload once.
	NsPerOp     int64 `json:"ns_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	// SpeedupVsStaged is the staged row's ns/op divided by this row's
	// (1 on staged rows).
	SpeedupVsStaged float64 `json:"speedup_vs_staged"`
	// AllocReductionVsStaged is 1 - allocs/op ÷ staged allocs/op
	// (0 on staged rows).
	AllocReductionVsStaged float64 `json:"alloc_reduction_vs_staged"`
}

// PlanCacheBenchResult is one plan-cache / prepared-query ablation row:
// the same Auto workload executed cold (planner probe + execution, a
// fresh request), against a warm plan cache (probe skipped), against a
// retained prepare stage (only enumerate→aggregate→rank runs).
type PlanCacheBenchResult struct {
	// Mode is "cold", "cached" or "prepared".
	Mode string `json:"mode"`
	// NsPerOp is the geometric mean over the workload's queries of one
	// query's execution time — the paper suite's geo-time convention. A
	// repeat-query benchmark weighs each query shape equally; a plain
	// total would let one scan-heavy query swamp the point lookups the
	// plan cache and prepared statements exist to serve.
	NsPerOp int64 `json:"ns_per_op"`
	// AllocsPerOp is the matching geometric mean of allocations.
	AllocsPerOp int64 `json:"allocs_per_op"`
	// SpeedupVsCold is the cold row's ns/op divided by this row's.
	SpeedupVsCold float64 `json:"speedup_vs_cold"`
	// HitRate is the plan-cache hit fraction measured during the run
	// (cached row only; 1.0 means every probe was skipped).
	HitRate float64 `json:"hit_rate,omitempty"`
}

// ColdStartBenchResult compares a cold start from a durable snapshot
// (kbtable.OpenDir: load graph + indexes, replay nothing) against
// rebuilding the same engine from scratch — the quantity the snapshot
// store exists to improve.
type ColdStartBenchResult struct {
	// SnapshotBytes is the on-disk snapshot size.
	SnapshotBytes int64 `json:"snapshot_bytes"`
	// IndexWireVersion is the wire format sniffed from the snapshot's
	// index files before recovery (the harness fails unless it is the
	// current index.WireVersion, so the timing below is guaranteed to
	// measure the binary v2 path, not a legacy gob load).
	IndexWireVersion int `json:"index_wire_version,omitempty"`
	// BuildMs is NewEngine (index construction) wall-clock time;
	// LoadMs is OpenDir (snapshot load) wall-clock time.
	BuildMs float64 `json:"build_ms"`
	LoadMs  float64 `json:"load_ms"`
	// SpeedupVsBuild is BuildMs / LoadMs.
	SpeedupVsBuild float64 `json:"speedup_vs_build"`
}

// ShardBenchReport is the BENCH_kbtable.json schema.
type ShardBenchReport struct {
	GoVersion  string             `json:"go_version"`
	GoMaxProcs int                `json:"gomaxprocs"`
	Entities   int                `json:"entities"`
	Edges      int                `json:"edges"`
	Queries    int                `json:"queries"`
	K          int                `json:"k"`
	Results    []ShardBenchResult `json:"results"`
	// Planner is the PE vs LE vs Auto ablation per corpus.
	Planner []PlannerBenchResult `json:"planner"`
	// Streaming is the streaming-vs-staged executor ablation on wiki.
	Streaming []StreamingBenchResult `json:"streaming_executor,omitempty"`
	// PlanCache is the cold vs plan-cache vs prepared ablation on wiki.
	PlanCache []PlanCacheBenchResult `json:"plan_cache,omitempty"`
	// ColdStart is the snapshot-load vs index-rebuild comparison.
	ColdStart *ColdStartBenchResult `json:"cold_start,omitempty"`
	// Footprint is the per-corpus index footprint: resident bytes/entry
	// and the v2-vs-gob snapshot size and load-time comparison.
	Footprint []IndexFootprintResult `json:"index_footprint,omitempty"`
	// ServeLatency / GroupCommit come from a kbload soak report
	// (kbbench -load-report): the serving path's latency record.
	ServeLatency []ServeLatencyResult `json:"serve_latency,omitempty"`
	GroupCommit  *GroupCommitResult   `json:"group_commit,omitempty"`
}

// RunShardBench measures query throughput of the serial engine against
// scatter-gather engines at each shard width, on one SynthWiki corpus and
// a fixed keyword workload. One benchmark op = the full workload, so ns/op
// compares end-to-end query cost; allocations come from testing.Benchmark.
func RunShardBench(cfg ShardBenchConfig) (*ShardBenchReport, error) {
	c := cfg.withDefaults()
	g := dataset.SynthWiki(dataset.WikiConfig{Entities: c.Entities, Types: c.Types, Seed: c.Seed})
	queries := dataset.Workload(g, dataset.WorkloadConfig{PerM: (c.Queries + 2) / 3, MaxM: 3, Seed: c.Seed})
	qs := make([]string, 0, c.Queries)
	for _, q := range queries {
		if len(qs) == c.Queries {
			break
		}
		qs = append(qs, q.Text)
	}
	report := &ShardBenchReport{
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Entities:   g.NumNodes(),
		Edges:      g.NumEdges(),
		Queries:    len(qs),
		K:          c.K,
	}

	opts := search.Options{K: c.K, SkipTrees: true}

	// Serial reference: one index, Workers=1.
	ix, err := index.Build(g, index.Options{D: 3, Workers: 0})
	if err != nil {
		return nil, err
	}
	serialOpts := opts
	serialOpts.Workers = 1
	serial := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range qs {
				search.PETopK(ix, q, serialOpts)
			}
		}
	})
	report.Results = append(report.Results, ShardBenchResult{
		Name:            "serial",
		NsPerOp:         serial.NsPerOp(),
		BytesPerOp:      serial.AllocedBytesPerOp(),
		AllocsPerOp:     serial.AllocsPerOp(),
		SpeedupVsSerial: 1,
	})

	for _, n := range c.Shards {
		eng, err := shard.NewEngine(g, n, index.Options{D: 3})
		if err != nil {
			return nil, err
		}
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, q := range qs {
					if _, err := eng.Search(context.Background(), shard.PatternEnum, q, opts); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		report.Results = append(report.Results, ShardBenchResult{
			Name:            fmt.Sprintf("shards-%d", n),
			Shards:          n,
			NsPerOp:         r.NsPerOp(),
			BytesPerOp:      r.AllocedBytesPerOp(),
			AllocsPerOp:     r.AllocsPerOp(),
			SpeedupVsSerial: float64(serial.NsPerOp()) / float64(r.NsPerOp()),
		})
	}

	// Planner ablation: the same workload under explicit PE, explicit LE
	// and the Auto planner, on both corpora. The wiki corpus and index are
	// reused from the shard rows; IMDB gets its own workload.
	imdb := dataset.SynthIMDB(dataset.IMDBConfig{Movies: c.Movies, Seed: c.Seed})
	imdbIx, err := index.Build(imdb, index.Options{D: 3, Workers: 0})
	if err != nil {
		return nil, err
	}
	imdbQueries := dataset.Workload(imdb, dataset.WorkloadConfig{PerM: (c.Queries + 2) / 3, MaxM: 3, Seed: c.Seed})
	iqs := make([]string, 0, c.Queries)
	for _, q := range imdbQueries {
		if len(iqs) == c.Queries {
			break
		}
		iqs = append(iqs, q.Text)
	}
	for _, corpus := range []struct {
		name    string
		ix      *index.Index
		queries []string
	}{{"wiki", ix, qs}, {"imdb", imdbIx, iqs}} {
		var peNs int64
		for _, algo := range []struct {
			name string
			a    search.Algo
		}{{"pe", search.AlgoPE}, {"le", search.AlgoLE}, {"auto", search.AlgoAuto}} {
			row := PlannerBenchResult{Corpus: corpus.name, Algo: algo.name}
			if algo.a == search.AlgoAuto {
				// One pass outside the timer records the planner's
				// decisions across the workload.
				for _, q := range corpus.queries {
					res, err := search.Execute(context.Background(), corpus.ix, q, algo.a, opts)
					if err != nil {
						return nil, err
					}
					if res.Plan.Algo == search.AlgoLE {
						row.ChoseLE++
					} else {
						row.ChosePE++
					}
				}
			}
			r := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					for _, q := range corpus.queries {
						if _, err := search.Execute(context.Background(), corpus.ix, q, algo.a, opts); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
			row.NsPerOp = r.NsPerOp()
			row.AllocsPerOp = r.AllocsPerOp()
			if algo.name == "pe" {
				peNs = r.NsPerOp()
			}
			row.SpeedupVsPE = float64(peNs) / float64(r.NsPerOp())
			report.Planner = append(report.Planner, row)
		}
	}

	// Streaming-executor ablation: the same wiki workload, serial, under
	// the staged baseline (Options.Staged) and the streaming default, for
	// both enumeration algorithms. SkipTrees keeps the measurement on the
	// fused enumerate+aggregate path the streaming rewrite targets.
	for _, algo := range []struct {
		name string
		a    search.Algo
	}{{"pe", search.AlgoPE}, {"le", search.AlgoLE}} {
		var staged StreamingBenchResult
		for _, mode := range []string{"staged", "streaming"} {
			mOpts := serialOpts
			mOpts.Staged = mode == "staged"
			r := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					for _, q := range qs {
						if _, err := search.Execute(context.Background(), ix, q, algo.a, mOpts); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
			row := StreamingBenchResult{
				Algo:        algo.name,
				Mode:        mode,
				NsPerOp:     r.NsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
			}
			if mode == "staged" {
				row.SpeedupVsStaged = 1
				staged = row
			} else {
				row.SpeedupVsStaged = float64(staged.NsPerOp) / float64(row.NsPerOp)
				if staged.AllocsPerOp > 0 {
					row.AllocReductionVsStaged = 1 - float64(row.AllocsPerOp)/float64(staged.AllocsPerOp)
				}
			}
			report.Streaming = append(report.Streaming, row)
		}
	}

	// Plan-cache / prepared-query ablation: the same wiki workload,
	// serial, under Auto, each query timed on its own and summarized by
	// the geometric mean (the suite's geo-time convention).
	rows, err := planCacheRows(ix, qs, serialOpts)
	if err != nil {
		return nil, err
	}
	report.PlanCache = append(report.PlanCache, rows...)

	// Index footprint: resident bytes/entry plus the v2-vs-gob snapshot
	// comparison, on both already-built corpora.
	for _, corpus := range []struct {
		name string
		g    *kg.Graph
		ix   *index.Index
	}{{"wiki", g, ix}, {"imdb", imdb, imdbIx}} {
		fp, err := IndexFootprint(corpus.name, corpus.g, corpus.ix)
		if err != nil {
			return nil, err
		}
		report.Footprint = append(report.Footprint, fp)
	}

	return report, nil
}

// planCacheRows measures every workload query under the three
// plan-resolution modes — cold (planner probe + execution), warm plan
// cache (probe skipped), retained prepare (only enumerate→aggregate→rank
// runs) — and folds each mode into one geometric-mean row.
func planCacheRows(ix *index.Index, qs []string, serialOpts search.Options) ([]PlanCacheBenchResult, error) {
	ctx := context.Background()
	words := make([][]string, len(qs))
	preps := make([]*search.Prepared, len(qs))
	pc := search.NewPlanCache(0)
	epoch := pc.Epoch()
	for i, q := range qs {
		words[i] = strings.Fields(q)
		st, err := search.PlanProbe(ctx, ix, q, serialOpts)
		if err != nil {
			return nil, err
		}
		pc.Put(search.PlanCacheKey(words[i]), epoch, st, words[i])
		p, err := search.PrepareQuery(ctx, ix, q, search.AlgoAuto, serialOpts)
		if err != nil {
			return nil, err
		}
		preps[i] = p
	}
	modes := []struct {
		name string
		op   func(b *testing.B, qi int)
	}{
		{"cold", func(b *testing.B, qi int) {
			st, err := search.PlanProbe(ctx, ix, qs[qi], serialOpts)
			if err != nil {
				b.Fatal(err)
			}
			plan := search.ChoosePlan(search.AlgoAuto, st, serialOpts)
			if _, err := search.Execute(ctx, ix, qs[qi], plan.Algo, serialOpts); err != nil {
				b.Fatal(err)
			}
		}},
		{"cached", func(b *testing.B, qi int) {
			st, ok := pc.Get(search.PlanCacheKey(words[qi]), epoch)
			if !ok {
				b.Fatal("plan cache miss on a warmed key")
			}
			plan := search.ChoosePlan(search.AlgoAuto, st, serialOpts)
			if _, err := search.Execute(ctx, ix, qs[qi], plan.Algo, serialOpts); err != nil {
				b.Fatal(err)
			}
		}},
		{"prepared", func(b *testing.B, qi int) {
			if _, err := search.ExecutePrepared(ctx, ix, preps[qi], preps[qi].Algo(), serialOpts); err != nil {
				b.Fatal(err)
			}
		}},
	}
	var out []PlanCacheBenchResult
	var coldNs int64
	for _, m := range modes {
		var logNs, logAllocs float64
		for qi := range qs {
			op := m.op
			r := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					op(b, qi)
				}
			})
			logNs += math.Log(float64(r.NsPerOp()))
			allocs := r.AllocsPerOp()
			if allocs < 1 {
				allocs = 1
			}
			logAllocs += math.Log(float64(allocs))
		}
		n := float64(len(qs))
		row := PlanCacheBenchResult{
			Mode:        m.name,
			NsPerOp:     int64(math.Exp(logNs / n)),
			AllocsPerOp: int64(math.Exp(logAllocs / n)),
		}
		if m.name == "cold" {
			coldNs = row.NsPerOp
			row.SpeedupVsCold = 1
		} else {
			row.SpeedupVsCold = float64(coldNs) / float64(row.NsPerOp)
		}
		if m.name == "cached" {
			cs := pc.Stats()
			if cs.Hits+cs.Misses > 0 {
				row.HitRate = float64(cs.Hits) / float64(cs.Hits+cs.Misses)
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// WikiGraph synthesizes the same wiki corpus RunShardBench measures, so
// cmd/kbbench can attach the cold-start row (which needs the kbtable
// facade — off limits here: the root package's in-package tests import
// this one) for the identical dataset.
func (c ShardBenchConfig) WikiGraph() *kg.Graph {
	cd := c.withDefaults()
	return dataset.SynthWiki(dataset.WikiConfig{Entities: cd.Entities, Types: cd.Types, Seed: cd.Seed})
}

// WriteJSON emits the report as indented JSON.
func (r *ShardBenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// String renders the report as a human-readable table.
func (r *ShardBenchReport) String() string {
	t := Table{
		Title: fmt.Sprintf("Shard scaling — %d entities, %d queries, k=%d, GOMAXPROCS=%d",
			r.Entities, r.Queries, r.K, r.GoMaxProcs),
		Header: []string{"config", "ns/op", "B/op", "allocs/op", "speedup"},
	}
	for _, res := range r.Results {
		t.Rows = append(t.Rows, []string{
			res.Name,
			fmt.Sprintf("%d", res.NsPerOp),
			fmt.Sprintf("%d", res.BytesPerOp),
			fmt.Sprintf("%d", res.AllocsPerOp),
			fmt.Sprintf("%.2fx", res.SpeedupVsSerial),
		})
	}
	cold := ""
	if r.ColdStart != nil {
		cold = fmt.Sprintf("\ncold start: snapshot %.1f MB, build %.0fms vs load %.0fms (%.1fx)\n",
			float64(r.ColdStart.SnapshotBytes)/(1<<20), r.ColdStart.BuildMs, r.ColdStart.LoadMs, r.ColdStart.SpeedupVsBuild)
	}
	for _, fp := range r.Footprint {
		cold += fmt.Sprintf("footprint %s: %.1f B/entry resident, snapshot %.2f MB (%.0f%% under gob), "+
			"encode %.0fms, decode %.0fms (%.1fx vs gob, %.1fx vs build)\n",
			fp.Corpus, fp.BytesPerEntry, float64(fp.SnapshotBytes)/(1<<20), fp.ShrinkVsGob*100,
			fp.EncodeMs, fp.DecodeMs, fp.LoadSpeedupVsGob, fp.LoadSpeedupVsBuild)
	}
	for _, sl := range r.ServeLatency {
		cold += fmt.Sprintf("serve %s: %.0f rps, p50 %s, p99 %s, p99.9 %s\n",
			sl.Op, sl.ThroughputRPS, fmtMs(sl.P50MS), fmtMs(sl.P99MS), fmtMs(sl.P999MS))
	}
	if gc := r.GroupCommit; gc != nil {
		cold += fmt.Sprintf("group commit: %d records in %d fsyncs (avg %.2f, max %d) at %.0f updates/s\n",
			gc.Records, gc.Batches, gc.AvgBatch, gc.MaxBatch, gc.UpdateThroughputRPS)
	}
	if len(r.Planner) == 0 {
		return t.String() + cold
	}
	p := Table{
		Title:  "Planner ablation — PE vs LE vs Auto per corpus",
		Header: []string{"corpus", "algo", "ns/op", "allocs/op", "vs pe", "auto: pe/le"},
	}
	for _, res := range r.Planner {
		choice := ""
		if res.Algo == "auto" {
			choice = fmt.Sprintf("%d/%d", res.ChosePE, res.ChoseLE)
		}
		p.Rows = append(p.Rows, []string{
			res.Corpus,
			res.Algo,
			fmt.Sprintf("%d", res.NsPerOp),
			fmt.Sprintf("%d", res.AllocsPerOp),
			fmt.Sprintf("%.2fx", res.SpeedupVsPE),
			choice,
		})
	}
	out := t.String() + "\n" + p.String()
	if len(r.Streaming) > 0 {
		s := Table{
			Title:  "Streaming executor ablation — staged baseline vs streaming (wiki, serial)",
			Header: []string{"algo", "mode", "ns/op", "B/op", "allocs/op", "vs staged", "alloc cut"},
		}
		for _, res := range r.Streaming {
			s.Rows = append(s.Rows, []string{
				res.Algo,
				res.Mode,
				fmt.Sprintf("%d", res.NsPerOp),
				fmt.Sprintf("%d", res.BytesPerOp),
				fmt.Sprintf("%d", res.AllocsPerOp),
				fmt.Sprintf("%.2fx", res.SpeedupVsStaged),
				fmt.Sprintf("%.0f%%", res.AllocReductionVsStaged*100),
			})
		}
		out += "\n" + s.String()
	}
	if len(r.PlanCache) > 0 {
		pc := Table{
			Title:  "Plan cache / prepared queries — auto plan resolution on wiki, serial",
			Header: []string{"mode", "ns/op", "allocs/op", "vs cold", "hit rate"},
		}
		for _, res := range r.PlanCache {
			hit := ""
			if res.HitRate > 0 {
				hit = fmt.Sprintf("%.0f%%", res.HitRate*100)
			}
			pc.Rows = append(pc.Rows, []string{
				res.Mode,
				fmt.Sprintf("%d", res.NsPerOp),
				fmt.Sprintf("%d", res.AllocsPerOp),
				fmt.Sprintf("%.2fx", res.SpeedupVsCold),
				hit,
			})
		}
		out += "\n" + pc.String()
	}
	return out + cold
}
