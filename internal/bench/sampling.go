package bench

import (
	"fmt"
	"sort"

	"kbtable/internal/index"
	"kbtable/internal/search"
)

// heavyQueries returns the n workload queries with the most valid subtrees
// on the Wiki index — the paper selects three such queries for the
// sampling study (Section 5.2 lists their subtree/pattern counts).
func heavyQueries(e *Env, n int) []queryCost {
	ix := e.WikiIndex(3)
	cs := costs(e, ix, e.WikiQueries())
	sort.Slice(cs, func(i, j int) bool { return cs[i].trees > cs[j].trees })
	if len(cs) > n {
		cs = cs[:n]
	}
	return cs
}

// exactTopKeys runs exact LETopK and returns the top-k pattern identity set.
func exactTopKeys(ix *index.Index, q string, k int) map[string]bool {
	res := search.LETopK(ix, q, search.Options{K: k, SkipTrees: true})
	keys := make(map[string]bool, len(res.Patterns))
	for _, rp := range res.Patterns {
		keys[rp.Pattern.ContentKey(ix.PatternTable())] = true
	}
	return keys
}

// precision computes |sampled ∩ exact| / min(k, |exact|), the paper's
// precision of Section 5.2 (denominator adjusted when fewer than k
// patterns exist at all).
func precision(ix *index.Index, exact map[string]bool, res *search.Result, k int) float64 {
	if len(exact) == 0 {
		return 1
	}
	denom := k
	if len(exact) < denom {
		denom = len(exact)
	}
	hit := 0
	for _, rp := range res.Patterns {
		if exact[rp.Pattern.ContentKey(ix.PatternTable())] {
			hit++
		}
	}
	return float64(hit) / float64(denom)
}

// RunFig11 reproduces Figure 11: LETopK execution time and precision for
// different sampling thresholds Λ at sampling rates 0.01 and 0.1, on the
// three subtree-heaviest workload queries; PETopK's time is reported for
// reference.
func RunFig11(e *Env) []Table {
	ix := e.WikiIndex(3)
	qs := heavyQueries(e, 3)
	lambdas := []int64{100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000}
	rhos := []float64{0.01, 0.1}
	k := e.Cfg.K

	timeTab := Table{Title: "Figure 11 (time): LETopK execution time (ms) vs sampling threshold Λ"}
	precTab := Table{Title: "Figure 11 (precision): LETopK precision vs sampling threshold Λ"}
	hdr := []string{"Λ"}
	for qi := range qs {
		for _, rho := range rhos {
			hdr = append(hdr, fmt.Sprintf("q%d ρ=%.2f", qi+1, rho))
		}
	}
	timeTab.Header = hdr
	precTab.Header = append([]string(nil), hdr...)

	exact := make([]map[string]bool, len(qs))
	for i, c := range qs {
		exact[i] = exactTopKeys(ix, c.q.Text, k)
	}

	for _, lam := range lambdas {
		tr := []string{fmt.Sprintf("%.0e", float64(lam))}
		pr := []string{fmt.Sprintf("%.0e", float64(lam))}
		for qi, c := range qs {
			for _, rho := range rhos {
				res := search.LETopK(ix, c.q.Text, search.Options{
					K: k, Lambda: lam, Rho: rho, Seed: e.Cfg.Seed, SkipTrees: true,
				})
				tr = append(tr, fmtMs(float64(res.Stats.Elapsed.Microseconds())/1000))
				pr = append(pr, fmt.Sprintf("%.2f", precision(ix, exact[qi], res, k)))
			}
		}
		timeTab.Rows = append(timeTab.Rows, tr)
		precTab.Rows = append(precTab.Rows, pr)
	}
	for qi, c := range qs {
		pe := search.PETopK(ix, c.q.Text, search.Options{K: k, SkipTrees: true})
		note := fmt.Sprintf("q%d=%q: %d subtrees, %d patterns, PETopK %s",
			qi+1, c.q.Text, c.trees, c.patterns, fmtMs(float64(pe.Stats.Elapsed.Microseconds())/1000))
		timeTab.Notes = append(timeTab.Notes, note)
	}
	return []Table{timeTab, precTab}
}

// RunFig12 reproduces Figure 12: LETopK execution time and precision vs
// sampling rate ρ at a fixed threshold Λ, on the same three heavy queries;
// PETopK marked for comparison.
func RunFig12(e *Env) []Table {
	ix := e.WikiIndex(3)
	qs := heavyQueries(e, 3)
	rhos := []float64{0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0}
	k := e.Cfg.K
	// The paper fixes Λ=1e5 against millions of subtrees; scale the
	// threshold to our workload so sampling actually engages.
	var lambda int64 = 10_000

	timeTab := Table{Title: fmt.Sprintf("Figure 12(a): LETopK execution time (ms) vs sampling rate ρ (Λ=%d)", lambda)}
	precTab := Table{Title: fmt.Sprintf("Figure 12(b): LETopK precision vs sampling rate ρ (Λ=%d)", lambda)}
	hdr := []string{"ρ"}
	for qi := range qs {
		hdr = append(hdr, fmt.Sprintf("q%d", qi+1))
	}
	timeTab.Header = hdr
	precTab.Header = append([]string(nil), hdr...)

	exact := make([]map[string]bool, len(qs))
	for i, c := range qs {
		exact[i] = exactTopKeys(ix, c.q.Text, k)
	}
	for _, rho := range rhos {
		tr := []string{fmt.Sprintf("%.2f", rho)}
		pr := []string{fmt.Sprintf("%.2f", rho)}
		for qi, c := range qs {
			res := search.LETopK(ix, c.q.Text, search.Options{
				K: k, Lambda: lambda, Rho: rho, Seed: e.Cfg.Seed, SkipTrees: true,
			})
			tr = append(tr, fmtMs(float64(res.Stats.Elapsed.Microseconds())/1000))
			pr = append(pr, fmt.Sprintf("%.2f", precision(ix, exact[qi], res, k)))
		}
		timeTab.Rows = append(timeTab.Rows, tr)
		precTab.Rows = append(precTab.Rows, pr)
	}
	for qi, c := range qs {
		pe := search.PETopK(ix, c.q.Text, search.Options{K: k, SkipTrees: true})
		timeTab.Notes = append(timeTab.Notes, fmt.Sprintf("q%d=%q: PETopK %s",
			qi+1, c.q.Text, fmtMs(float64(pe.Stats.Elapsed.Microseconds())/1000)))
	}
	return []Table{timeTab, precTab}
}
