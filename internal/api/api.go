// Package api is the versioned wire contract of the kbtable HTTP
// surface: every request/response body exchanged on the /v1 endpoints,
// the structured error envelope with its stable machine codes, and the
// coordinator↔node cluster protocol. internal/serve implements the
// contract, internal/client speaks it, and internal/cluster routes
// scatter-gather legs over it; none of them defines wire shapes of
// their own. Changing a field here is an API change — the schema golden
// (testdata/api/v1.golden) pins the serialized form.
package api

import (
	"context"
	"fmt"
	"strings"

	"kbtable"
)

// Version is the current wire API version, the leading path segment of
// every endpoint (e.g. /v1/search). Unversioned paths remain aliases of
// /v1 for one release.
const Version = "v1"

// Stable machine-readable error codes, carried in ErrorBody.Code.
// Clients dispatch on these, never on message text or HTTP status alone.
const (
	// CodeBadRequest: the request is malformed or names impossible
	// parameters (bad JSON, wrong content type, k over the limit, …).
	CodeBadRequest = "bad_request"
	// CodeShed: admission control shed the request under overload.
	// Retry after ErrorBody.RetryAfterMS (also on the Retry-After
	// header, in seconds).
	CodeShed = "shed"
	// CodeStaleEpoch: the node's applied state does not match the epoch
	// or WAL sequence the request pinned (cluster scatter legs, or a
	// prepare racing an update). Retry against the current state.
	CodeStaleEpoch = "stale_epoch"
	// CodePreparedGone: the prepared_id is unknown or its epoch was
	// superseded by an update. Re-prepare and retry.
	CodePreparedGone = "prepared_gone"
	// CodeDurability: the update could not be made durable (WAL append
	// or fsync failed); the server refuses further updates.
	CodeDurability = "durability"
	// CodeNotFound / CodeMethodNotAllowed: unknown path, wrong verb.
	CodeNotFound         = "not_found"
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeTimeout / CodeCanceled: the query ran out of time, or the
	// client went away while it was queued or running.
	CodeTimeout  = "timeout"
	CodeCanceled = "canceled"
	// CodeReadOnly: this server does not accept updates (replica or
	// -readonly), or the engine cannot apply them.
	CodeReadOnly = "read_only"
	// CodeNotImplemented: the engine behind this server lacks the
	// requested capability (prepared queries, WAL shipping, …).
	CodeNotImplemented = "not_implemented"
	// CodeWALGap: the requested WAL cursor precedes the oldest retained
	// record (a checkpoint truncated history). The follower must reseed
	// from a snapshot.
	CodeWALGap = "wal_gap"
	// CodeInternal: unexpected server-side failure.
	CodeInternal = "internal"
)

// ErrorBody is the structured error payload.
type ErrorBody struct {
	// Code is one of the Code* constants — the stable contract.
	Code string `json:"code"`
	// Message is human-readable detail; its text is NOT stable.
	Message string `json:"message"`
	// RetryAfterMS, when nonzero, is how long the client should back
	// off before retrying (set on shed responses).
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// ErrorResponse is the envelope every non-2xx response carries:
// {"error":{"code":"shed","message":"…","retry_after_ms":1000}}.
type ErrorResponse struct {
	Error ErrorBody `json:"error"`
}

// SearchRequest is the POST /v1/search body.
type SearchRequest struct {
	// Query is the keyword query, e.g. "database software company revenue".
	Query string `json:"query"`
	// K is the number of table answers; default 10.
	K int `json:"k,omitempty"`
	// Algorithm is "patternenum"/"pe" (default), "linearenum"/"le",
	// "baseline", or "auto" (the cost-based planner picks patternenum or
	// linearenum per query; answers are bit-identical to requesting the
	// resolved algorithm explicitly).
	Algorithm string `json:"algorithm,omitempty"`
	// D must be 0 or the engine's height threshold.
	D int `json:"d,omitempty"`
	// MaxRows caps materialized rows per answer; default server-side.
	MaxRows int `json:"max_rows,omitempty"`
	// AutoBias overrides the planner's PATTERNENUM preference for "auto"
	// requests (0 = default; larger favors patternenum). It steers only
	// the choice, never the answer bytes, so it does not participate in
	// the cache key — the resolved algorithm it influenced does.
	AutoBias float64 `json:"auto_bias,omitempty"`
	// Priority is the admission-control class: "high", "normal"
	// (default), or "low". The X-KB-Priority header takes precedence.
	// Priority orders only queue admission under load; it never changes
	// the answer bytes and does not participate in the cache key.
	Priority string `json:"priority,omitempty"`
	// PreparedID executes a handle from POST /v1/prepare instead of
	// planning from scratch: query/k/algorithm/d/max_rows come from the
	// prepare-time request (and must be omitted here), only auto_bias
	// and priority may be set per execution. A handle whose epoch has
	// been superseded by an update answers 410 prepared_gone — re-prepare.
	PreparedID string `json:"prepared_id,omitempty"`
}

// SearchAnswer is one ranked table answer on the wire.
type SearchAnswer struct {
	Rank    int      `json:"rank"`
	Score   float64  `json:"score"`
	NumRows int      `json:"num_rows"`
	Pattern string   `json:"pattern"`
	Columns []string `json:"columns"`
	// FullColumns are the paper's formal column names τ(v)α(e)τ(u),
	// parallel to Columns. They make remote answers byte-comparable to
	// local golden renderings.
	FullColumns []string   `json:"full_columns,omitempty"`
	Rows        [][]string `json:"rows"`
}

// SearchResponse is the POST /v1/search reply. Epoch names the KB
// snapshot that computed the answers: every response is consistent with
// exactly that published epoch (cached responses keep the epoch they
// were computed under — they are only retained while still valid).
type SearchResponse struct {
	Query string `json:"query"`
	K     int    `json:"k"`
	// Algorithm is the algorithm that computed (or would compute) the
	// answers — for "auto" requests, the planner's resolution, never
	// "auto" itself.
	Algorithm string `json:"algorithm"`
	D         int    `json:"d"`
	Epoch     uint64 `json:"epoch"`
	Cached    bool   `json:"cached"`
	// Coalesced reports that this response shares an execution with an
	// identical concurrent request (same normalized query, options, and
	// epoch) instead of having run the search itself.
	Coalesced bool `json:"coalesced,omitempty"`
	// PreparedID echoes the handle a prepared execution ran (prepared
	// searches bypass the result cache; Epoch is the handle's).
	PreparedID string  `json:"prepared_id,omitempty"`
	ElapsedMS  float64 `json:"elapsed_ms"`
	// Plan reports the resolved execution plan and per-stage timings
	// (omitted when the engine does not expose plans). On cache hits the
	// stage timings are those of the run that populated the entry.
	Plan    *PlanOut       `json:"plan,omitempty"`
	Answers []SearchAnswer `json:"answers"`
}

// PlanOut is the wire form of a resolved execution plan.
type PlanOut struct {
	// Algorithm is the resolved algorithm's wire name.
	Algorithm string `json:"algorithm"`
	// Auto reports that the planner (not the request) chose Algorithm.
	Auto bool `json:"auto"`
	// Reason is the planner's cost rationale (auto only).
	Reason string `json:"reason,omitempty"`
	// CandidateRoots is -1 when the plan did not need the intersection.
	CandidateRoots int   `json:"candidate_roots"`
	RootTypes      int   `json:"root_types"`
	PatternSpace   int64 `json:"pattern_space"`
	Frontier       int64 `json:"frontier"`
	// Per-stage wall clock of the staged executor, in milliseconds.
	PrepareMS   float64 `json:"prepare_ms"`
	EnumerateMS float64 `json:"enumerate_ms"`
	AggregateMS float64 `json:"aggregate_ms"`
	RankMS      float64 `json:"rank_ms"`
	// BoundPruned counts enumeration units the executor's top-k bound
	// pushdown cut before materialization (0 when pruning was off or
	// never fired).
	BoundPruned int64 `json:"bound_pruned"`
}

// PrepareRequest is the POST /v1/prepare body: the search shape to
// retain. The fields mirror SearchRequest (auto_bias here becomes the
// handle's default bias; baseline cannot be prepared — it has no
// prepare stage).
type PrepareRequest struct {
	Query     string  `json:"query"`
	K         int     `json:"k,omitempty"`
	Algorithm string  `json:"algorithm,omitempty"`
	D         int     `json:"d,omitempty"`
	MaxRows   int     `json:"max_rows,omitempty"`
	AutoBias  float64 `json:"auto_bias,omitempty"`
}

// PrepareResponse is the POST /v1/prepare reply: the handle to pass as
// prepared_id to POST /v1/search. Handles are bound to the epoch that
// prepared them and expire on the next update (410 prepared_gone).
type PrepareResponse struct {
	ID        string `json:"id"`
	Epoch     uint64 `json:"epoch"`
	Query     string `json:"query"`
	K         int    `json:"k"`
	Algorithm string `json:"algorithm"`
	D         int    `json:"d"`
	MaxRows   int    `json:"max_rows"`
	// Plan is the plan the handle would execute right now (stage
	// timings zero — nothing has run). An "auto" handle re-resolves it
	// per execution, so a later search may legally run the other
	// algorithm if the adaptive bias drifted across the crossover.
	Plan *PlanOut `json:"plan,omitempty"`
}

// UpdateRequest is the POST /v1/update body: an atomic batch of
// mutations (see kbtable.UpdateOp for the op schema).
type UpdateRequest struct {
	Ops []kbtable.UpdateOp `json:"ops"`
}

// UpdateResponse is the POST /v1/update reply.
type UpdateResponse struct {
	// Epoch is the newly published epoch; searches answered after this
	// reply reflect the update (or carry an older epoch from cache only
	// if the update could not have changed them).
	Epoch uint64 `json:"epoch"`
	// NewEntities resolves this batch's add_entity back-references.
	NewEntities []int64 `json:"new_entities,omitempty"`
	Entities    int     `json:"entities"`
	Attributes  int     `json:"attributes"`
	// DirtyRoots / entry counts describe the incremental index splice.
	EntriesRemoved int64 `json:"entries_removed"`
	EntriesAdded   int64 `json:"entries_added"`
	DirtyRoots     int   `json:"dirty_roots"`
	// TouchedWords and InvalidatedCache size the blast radius: how many
	// posting lists changed and how many cached results were dropped.
	TouchedWords     int `json:"touched_words"`
	InvalidatedCache int `json:"invalidated_cache"`
	// AffectedShards counts shards whose postings the update touched
	// (0 on unsharded engines).
	AffectedShards int     `json:"affected_shards,omitempty"`
	ElapsedMS      float64 `json:"elapsed_ms"`
}

// CacheStats is the /v1/healthz view of the result cache.
type CacheStats struct {
	Size     int    `json:"size"`
	Capacity int    `json:"capacity"`
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
}

// ShardHealth is the /v1/healthz view of the engine's shard layout.
type ShardHealth struct {
	Count int `json:"count"`
	// Epochs / Roots / Entries are per-shard (absent on unsharded
	// engines): the shard's update epoch, live owned roots, and index
	// postings.
	Epochs  []uint64 `json:"epochs,omitempty"`
	Roots   []int    `json:"roots,omitempty"`
	Entries []int64  `json:"entries,omitempty"`
}

// IndexHealth is the /v1/healthz view of the resident index footprint:
// exact columnar-arena bytes (summed across shards) and the bytes/entry
// figure the footprint benchmarks track.
type IndexHealth struct {
	Bytes         int64   `json:"bytes"`
	BytesPerEntry float64 `json:"bytes_per_entry"`
	Entries       int64   `json:"entries"`
	Patterns      int     `json:"patterns"`
	D             int     `json:"d"`
}

// PlannerHealth aggregates the Auto planner's decisions since startup.
type PlannerHealth struct {
	// AutoRequests counts searches that asked for "auto".
	AutoRequests uint64 `json:"auto_requests"`
	// ChosePatternEnum / ChoseLinearEnum split the resolutions.
	ChosePatternEnum uint64 `json:"chose_patternenum"`
	ChoseLinearEnum  uint64 `json:"chose_linearenum"`
	// PlanCache reports the engine chain's plan cache (absent when the
	// engine does not expose one): repeat query shapes resolve their
	// Auto plan from cached statistics instead of re-probing.
	PlanCache *PlanCacheHealth `json:"plan_cache,omitempty"`
	// AdaptiveBias reports the learned planner bias (absent when
	// adaptive feedback is off).
	AdaptiveBias *AdaptiveBiasHealth `json:"adaptive_bias,omitempty"`
	// Prepared reports prepared-query traffic.
	Prepared PreparedHealth `json:"prepared"`
}

// PlanCacheHealth is the /v1/healthz view of the engine's plan cache.
type PlanCacheHealth struct {
	Size     int `json:"size"`
	Capacity int `json:"capacity"`
	// Epoch is the cache's invalidation epoch — it advances on every
	// applied update, fencing superseded snapshots out of the cache.
	Epoch       uint64 `json:"epoch"`
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Invalidated uint64 `json:"invalidated"`
}

// AdaptiveBiasHealth is the /v1/healthz view of the adaptive planner
// feedback accumulator.
type AdaptiveBiasHealth struct {
	// Base is the static bias the learned scale applies to; Effective
	// is the bias "auto" requests without an explicit auto_bias run
	// under right now (== Base until both algorithms were observed).
	Base      float64 `json:"base"`
	Effective float64 `json:"effective"`
	// PEObservations / LEObservations count folded executions, and the
	// NsPerUnit pair is the learned cost-model exchange rate.
	PEObservations uint64  `json:"pe_observations"`
	LEObservations uint64  `json:"le_observations"`
	PENsPerUnit    float64 `json:"pe_ns_per_unit"`
	LENsPerUnit    float64 `json:"le_ns_per_unit"`
}

// PreparedHealth is the /v1/healthz view of the prepared-query registry.
type PreparedHealth struct {
	// Live counts handles valid on the current epoch.
	Live int `json:"live"`
	// Prepares / Searches / Expired count handles created, prepared
	// executions served, and handles invalidated by epoch swaps.
	Prepares uint64 `json:"prepares"`
	Searches uint64 `json:"searches"`
	Expired  uint64 `json:"expired"`
}

// DurabilityHealth is the /v1/healthz view of the snapshot + WAL store.
type DurabilityHealth struct {
	// DataDir is the store's directory.
	DataDir string `json:"data_dir"`
	// WALSeq is the last durable WAL sequence; SnapshotSeq is the WAL
	// position of the newest snapshot. PendingRecords = WALSeq −
	// SnapshotSeq is how many update batches a cold start would replay.
	WALSeq         uint64 `json:"wal_seq"`
	SnapshotSeq    uint64 `json:"snapshot_seq"`
	PendingRecords uint64 `json:"wal_pending_records"`
	// WALBytes is the live WAL size on disk.
	WALBytes int64 `json:"wal_bytes"`
	// Checkpoints / CheckpointErrors count completed and failed
	// checkpoints since startup; CheckpointEvery is the trigger
	// threshold (-1 = automatic checkpoints disabled).
	Checkpoints      uint64 `json:"checkpoints"`
	CheckpointErrors uint64 `json:"checkpoint_errors,omitempty"`
	CheckpointEvery  int    `json:"checkpoint_every"`
	// LastCheckpointUnix is the wall-clock second of the last completed
	// checkpoint (0 = none since startup).
	LastCheckpointUnix int64 `json:"last_checkpoint_unix,omitempty"`
	// TornOnOpen reports that this process found (and truncated) a torn
	// WAL suffix when it opened the store — evidence of a crash.
	TornOnOpen bool `json:"torn_on_open,omitempty"`
	// WALBroken reports a failed WAL append: the server now rejects
	// every update (503 durability) until restarted. The top-level
	// status turns "degraded" so health probes catch it.
	WALBroken bool `json:"wal_broken,omitempty"`
	// Group-commit batching: GroupCommitBatches fsyncs covered
	// GroupCommitRecords WAL records (their ratio is the average batch
	// size; 1.0 means updates never overlapped), and the largest batch.
	GroupCommitBatches  uint64 `json:"group_commit_batches"`
	GroupCommitRecords  uint64 `json:"group_commit_records"`
	GroupCommitMaxBatch int    `json:"group_commit_max_batch"`
}

// ServingHealth is the /v1/healthz view of the serving path: read
// coalescing and admission control.
type ServingHealth struct {
	// Coalesced counts searches that joined another identical in-flight
	// execution instead of running the search themselves.
	Coalesced uint64 `json:"coalesced"`
	// MaxConcurrent is the execution-slot bound (0 = gate disabled).
	MaxConcurrent int `json:"max_concurrent"`
	// InFlight / QueueDepth are the gate's current occupancy.
	InFlight   int `json:"in_flight"`
	QueueDepth int `json:"queue_depth"`
	// ShedQueueFull / ShedQueueTimeout count 429s by cause.
	ShedQueueFull    uint64 `json:"shed_queue_full"`
	ShedQueueTimeout uint64 `json:"shed_queue_timeout"`
}

// HealthResponse is the GET /v1/healthz reply.
type HealthResponse struct {
	Status        string            `json:"status"`
	UptimeSeconds float64           `json:"uptime_seconds"`
	Requests      uint64            `json:"requests"`
	Epoch         uint64            `json:"epoch"`
	Updates       uint64            `json:"updates"`
	Updatable     bool              `json:"updatable"`
	Cache         CacheStats        `json:"cache"`
	Planner       PlannerHealth     `json:"planner"`
	Serving       ServingHealth     `json:"serving"`
	Index         *IndexHealth      `json:"index,omitempty"`
	Shards        *ShardHealth      `json:"shards,omitempty"`
	Durability    *DurabilityHealth `json:"durability,omitempty"`
	Cluster       *ClusterHealth    `json:"cluster,omitempty"`
}

// ShardsResponse is the GET /v1/shards reply: which slice of the shard
// partition this process hosts, and at what replication position. The
// cluster router reads it at startup and on failover to learn where
// each shard's legs can run.
type ShardsResponse struct {
	// Shards is the total partition size (0 = unsharded engine).
	Shards int `json:"shards"`
	// Owned lists the resident shards, ascending. A complete engine
	// owns all of them.
	Owned    []int `json:"owned"`
	Complete bool  `json:"complete"`
	// Epoch is the published epoch; Seq is the WAL sequence the engine
	// state reflects (on followers, the replication cursor).
	Epoch uint64 `json:"epoch"`
	Seq   uint64 `json:"seq"`
	// Role / NodeID identify the process in a cluster ("standalone",
	// "coordinator", "node", "replica"; empty outside a cluster).
	Role   string `json:"role,omitempty"`
	NodeID string `json:"node_id,omitempty"`
}

// WALSegmentsResponse is the GET /v1/wal/segments?after=N reply:
// committed WAL records with sequence > after, in order. Followers
// replay them through the same update path the origin used and advance
// their cursor to the last record's Seq.
type WALSegmentsResponse struct {
	// After echoes the request cursor.
	After uint64 `json:"after"`
	// Records are the shipped update batches (possibly empty).
	Records []kbtable.WALRecord `json:"records"`
	// LastSeq is the newest durable sequence on the origin; cursor <
	// LastSeq with no records means the gap was checkpointed away.
	LastSeq uint64 `json:"last_seq"`
	// More reports that the batch was truncated at the server's limit —
	// pull again immediately instead of sleeping an interval.
	More bool `json:"more,omitempty"`
}

// ClusterProbeRequest is the coordinator→node POST /v1/cluster/probe
// body: run the prepare-only planner probe for one resident shard.
type ClusterProbeRequest struct {
	Shard    int     `json:"shard"`
	Query    string  `json:"query"`
	K        int     `json:"k,omitempty"`
	MaxRows  int     `json:"max_rows,omitempty"`
	AutoBias float64 `json:"auto_bias,omitempty"`
	// Seq pins the coordinator's WAL position: a node whose applied
	// cursor differs answers 409 stale_epoch instead of computing a
	// probe on a different snapshot.
	Seq uint64 `json:"seq"`
}

// ClusterProbeResponse carries one shard's probe statistics back to the
// coordinator, which merges them in ascending shard order.
type ClusterProbeResponse struct {
	Shard int                    `json:"shard"`
	Seq   uint64                 `json:"seq"`
	Stats kbtable.ShardPlanStats `json:"stats"`
}

// ClusterScatterRequest is the coordinator→node POST /v1/cluster/scatter
// body: run one shard's enumerate→aggregate leg under an already
// resolved algorithm ("patternenum" or "linearenum"; never "auto" —
// the coordinator resolves plans — and never "baseline", which stays
// in-process).
type ClusterScatterRequest struct {
	Shard     int     `json:"shard"`
	Query     string  `json:"query"`
	Algorithm string  `json:"algorithm"`
	K         int     `json:"k,omitempty"`
	MaxRows   int     `json:"max_rows,omitempty"`
	AutoBias  float64 `json:"auto_bias,omitempty"`
	// Seq pins the coordinator's WAL position, as in ClusterProbeRequest.
	Seq uint64 `json:"seq"`
}

// ClusterScatterResponse carries one shard's complete scatter partial:
// content-keyed patterns with per-root aggregates, sufficient for the
// coordinator's exact Theorem-5 gather.
type ClusterScatterResponse struct {
	Shard   int                   `json:"shard"`
	Seq     uint64                `json:"seq"`
	Partial *kbtable.ShardPartial `json:"partial"`
}

// ClusterHealth is the /v1/healthz cluster section.
type ClusterHealth struct {
	// Role is "coordinator", "node", or "replica".
	Role   string `json:"role"`
	NodeID string `json:"node_id,omitempty"`
	// Seq is this process's applied WAL position (the origin's durable
	// sequence on a coordinator, the replication cursor on followers).
	Seq uint64 `json:"seq"`
	// Nodes is the coordinator's member table with per-node liveness.
	Nodes []ClusterNodeHealth `json:"nodes,omitempty"`
	// Replication is the follower-side pull state.
	Replication *ReplicationHealth `json:"replication,omitempty"`
}

// ClusterNodeHealth is one member in the coordinator's view.
type ClusterNodeHealth struct {
	ID     string `json:"id"`
	Addr   string `json:"addr"`
	Role   string `json:"role"`
	Shards []int  `json:"shards,omitempty"`
	// Healthy reports the last interaction outcome; LastError is the
	// most recent failure (empty when healthy).
	Healthy   bool   `json:"healthy"`
	LastError string `json:"last_error,omitempty"`
	// Remote / LocalFallback count shard legs this node served vs legs
	// that fell back to coordinator-local execution.
	Remote        uint64 `json:"remote"`
	LocalFallback uint64 `json:"local_fallback"`
}

// ReplicationHealth is the follower-side WAL pull state.
type ReplicationHealth struct {
	// Source is the origin's base URL.
	Source string `json:"source"`
	// Seq is the applied cursor; SourceSeq the origin's last observed
	// durable sequence; Lag their difference at the last pull.
	Seq       uint64 `json:"seq"`
	SourceSeq uint64 `json:"source_seq"`
	Lag       uint64 `json:"lag"`
	// Pulls / Records / Errors count pull rounds, applied records, and
	// failed rounds since startup.
	Pulls   uint64 `json:"pulls"`
	Records uint64 `json:"records"`
	Errors  uint64 `json:"errors"`
	// LastError is the most recent pull failure (empty when healthy).
	LastError string `json:"last_error,omitempty"`
}

// AlgorithmName returns a's stable wire name, as carried in
// SearchRequest.Algorithm and ClusterScatterRequest.Algorithm.
func AlgorithmName(a kbtable.Algorithm) string {
	switch a {
	case kbtable.LinearEnum:
		return "linearenum"
	case kbtable.Baseline:
		return "baseline"
	case kbtable.Auto:
		return "auto"
	default:
		return "patternenum"
	}
}

// ParseAlgorithm is AlgorithmName's inverse, accepting the "pe"/"le"
// shorthands and the empty string (= the default, PatternEnum).
func ParseAlgorithm(s string) (kbtable.Algorithm, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "pe", "patternenum":
		return kbtable.PatternEnum, nil
	case "le", "linearenum":
		return kbtable.LinearEnum, nil
	case "baseline":
		return kbtable.Baseline, nil
	case "auto":
		return kbtable.Auto, nil
	}
	return 0, fmt.Errorf("unknown algorithm %q (want patternenum, linearenum, baseline or auto)", s)
}

// seqKey carries a pinned WAL sequence through a context from the
// serving layer (which knows the snapshot a request is pinned to) to
// the cluster transport (which stamps it on scatter legs).
type seqKey struct{}

// WithSeq returns a context carrying the pinned WAL sequence seq.
func WithSeq(ctx context.Context, seq uint64) context.Context {
	return context.WithValue(ctx, seqKey{}, seq)
}

// SeqFrom extracts the pinned WAL sequence (0, false when absent).
func SeqFrom(ctx context.Context) (uint64, bool) {
	v, ok := ctx.Value(seqKey{}).(uint64)
	return v, ok
}
